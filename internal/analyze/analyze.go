// Package analyze is a lightweight static-analysis driver built purely on
// the standard library's go/parser, go/ast and go/types (no
// golang.org/x/tools dependency, keeping the module dependency-free). It
// exists to mechanically enforce the numeric-soundness and determinism
// invariants the error-propagation math relies on: bounds computed by
// internal/core are only guaranteed when float comparisons are
// tolerance-based, float64 state is not silently truncated, RNG seeds are
// threaded explicitly, and error returns from codec/quantizer entry
// points are never dropped.
//
// The driver loads packages from source, type-checks them with the
// stdlib source importer, and runs a suite of repo-specific Analyzers
// over each package. Findings can be suppressed per line with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or the line directly above it; the reason
// is mandatory so every suppression documents why the invariant does not
// apply.
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Each analyzer is a self-contained
// file in this package; see All for the suite.
type Analyzer struct {
	// Name is the identifier used in findings, -only filters and
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Match restricts the analyzer to packages whose import path it
	// accepts; nil runs the analyzer on every package.
	Match func(pkgPath string) bool
	// Run inspects one type-checked package and reports findings
	// through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package import path (used by Match and findings).
	Path string
	// Prog is the whole-analysis view: module call graph plus the
	// propagated fact store (see NewProgram). Interprocedural analyzers
	// (walltime, boundflow) consult it; local analyzers ignore it.
	Prog *Program

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Package:  p.Path,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported invariant violation.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Package  string         `json:"package"`
	Position token.Position `json:"position"`
	Message  string         `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// All returns the full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCompare,
		UnseededRand,
		LossyConv,
		DroppedErr,
		NonFinite,
		Hotalloc,
		MapOrder,
		WallTime,
		GoroOrder,
		BoundFlow,
		IgnoreStale,
	}
}

// ByName resolves a comma-separated analyzer name list against All.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analyze: unknown analyzer %q", n)
		}
	}
	return out, nil
}

// Run executes the analyzers over one loaded package, drops suppressed
// findings, and returns the rest sorted by position. Interprocedural
// facts are computed from this package alone; multi-package analysis
// goes through NewProgram + RunProgram (the CLI path).
func Run(pkg *Package, analyzers []*Analyzer) []Finding {
	return RunProgram(NewProgram([]*Package{pkg}), analyzers)
}

// RunProgram executes the analyzers over every package in the program,
// sharing one call graph and fact store across packages. Suppressed
// findings are dropped; when IgnoreStale is among the analyzers, every
// //lint:ignore directive that (a) names only analyzers that actually
// ran and (b) suppressed nothing is reported as stale.
func RunProgram(prog *Program, analyzers []*Analyzer) []Finding {
	active := map[string]bool{}
	staleCheck := false
	var real []*Analyzer
	for _, a := range analyzers {
		if a.Name == IgnoreStale.Name {
			staleCheck = true
			continue
		}
		active[a.Name] = true
		real = append(real, a)
	}
	// "*" directives suppress every analyzer, so their staleness can only
	// be judged when every real analyzer ran.
	fullSuite := true
	for _, a := range All() {
		if a.Run != nil && !active[a.Name] {
			fullSuite = false
		}
	}

	var all []Finding
	for _, pkg := range prog.Packages {
		var findings []Finding
		for _, a := range real {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
				Prog:      prog,
				findings:  &findings,
			}
			a.Run(pass)
		}
		dirs, index := collectSuppressions(pkg.Fset, pkg.Files)
		for _, f := range findings {
			if !index.covers(f) {
				all = append(all, f)
			}
		}
		if staleCheck {
			for _, d := range dirs {
				if d.used > 0 || !d.judgeable(active, fullSuite) {
					continue
				}
				all = append(all, Finding{
					Analyzer: IgnoreStale.Name,
					Package:  pkg.Path,
					Position: d.pos,
					Message: fmt.Sprintf("stale //lint:ignore %s: no finding on this or the next line; delete the directive",
						strings.Join(d.names, ",")),
				})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Position, all[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all
}

// directive is one parsed //lint:ignore with its suppression-use count.
type directive struct {
	pos   token.Position
	names []string
	used  int
}

// judgeable reports whether staleness can be decided for this directive
// given the set of analyzers that ran: every named analyzer must have
// run, else "suppressed nothing" may just mean "its analyzer was off".
func (d *directive) judgeable(active map[string]bool, fullSuite bool) bool {
	for _, n := range d.names {
		if n == "*" {
			if !fullSuite {
				return false
			}
			continue
		}
		if !active[n] {
			return false
		}
	}
	return true
}

// suppressionIndex maps file -> line -> directives covering that line.
type suppressionIndex map[string]map[int][]*directive

// covers reports whether a directive suppresses f, counting the use on
// the directive so stale ones can be told apart.
func (s suppressionIndex) covers(f Finding) bool {
	hit := false
	for _, d := range s[f.Position.Filename][f.Position.Line] {
		for _, n := range d.names {
			if n == f.Analyzer || n == "*" {
				d.used++
				hit = true
				break
			}
		}
	}
	return hit
}

const ignoreDirective = "lint:ignore"

// collectSuppressions scans comments for //lint:ignore directives. A
// directive suppresses matching findings on its own line (trailing
// comment) and on the following line (comment above the statement). A
// directive without a reason is itself surfaced as a malformed-directive
// finding by the driver (see CheckDirectives).
func collectSuppressions(fset *token.FileSet, files []*ast.File) ([]*directive, suppressionIndex) {
	var dirs []*directive
	index := suppressionIndex{}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &directive{pos: pos, names: names}
				dirs = append(dirs, d)
				lines := index[pos.Filename]
				if lines == nil {
					lines = map[int][]*directive{}
					index[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					lines[ln] = append(lines[ln], d)
				}
			}
		}
	}
	return dirs, index
}

// parseIgnore parses "//lint:ignore name[,name] reason". It returns
// ok=false for comments that are not well-formed directives (including
// missing reasons, so malformed suppressions never silence findings).
func parseIgnore(text string) (names []string, ok bool) {
	rest, isDirective := ignoreDirectiveBody(text)
	if !isDirective {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, false // analyzer list plus a reason are mandatory
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// ignoreDirectiveBody returns the text after "lint:ignore" if the
// comment is that directive (respecting the word boundary, so
// lint:ignoreextra is not a directive).
func ignoreDirectiveBody(comment string) (rest string, ok bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if text == ignoreDirective {
		return "", true
	}
	body, found := strings.CutPrefix(text, ignoreDirective+" ")
	if !found {
		body, found = strings.CutPrefix(text, ignoreDirective+"\t")
	}
	if !found {
		return "", false
	}
	return strings.TrimSpace(body), true
}

// CheckDirectives reports malformed //lint:ignore directives (missing
// analyzer name or reason) so a typo cannot silently fail to suppress.
func CheckDirectives(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if _, isDirective := ignoreDirectiveBody(c.Text); !isDirective {
					continue
				}
				if _, ok := parseIgnore(c.Text); !ok {
					out = append(out, Finding{
						Analyzer: "driver",
						Package:  pkg.Path,
						Position: pkg.Fset.Position(c.Pos()),
						Message:  "malformed //lint:ignore directive: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
					})
				}
			}
		}
	}
	return out
}

// pathMatchAny returns a Match func accepting package paths that contain
// any of the given fragments.
func pathMatchAny(fragments ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, f := range fragments {
			if strings.Contains(pkgPath, f) {
				return true
			}
		}
		return false
	}
}
