package analyze

// IgnoreStale is the driver-level staleness check for //lint:ignore
// directives: a directive that suppressed nothing, while every analyzer
// it names actually ran, is dead weight — worse, it pre-authorizes a
// future violation on that line to land silently. RunProgram implements
// the check itself (Run is nil): it needs the suppression-use counts
// the finding filter produces, not an AST walk of its own.
//
// A directive is only judged when it is judgeable: naming analyzers
// that were filtered out with -only leaves it untouched, and the
// wildcard "*" form is judged only when the full suite ran.
var IgnoreStale = &Analyzer{
	Name: "ignorestale",
	Doc:  "flags //lint:ignore directives that no longer suppress any finding",
	Run:  nil, // special-cased in RunProgram
}
