package analyze

import (
	"go/ast"
	"go/types"
)

// UnseededRand flags non-deterministic randomness: calls to math/rand's
// top-level functions (which draw from the process-global, untracked
// generator) and rand.NewSource with a compile-time-constant seed that
// is not threaded from a parameter. Spec.Build and the training loops
// promise bit-reproducible initialization given a seed; any global or
// hard-wired RNG breaks that promise silently.
var UnseededRand = &Analyzer{
	Name: "unseededrand",
	Doc:  "flags global math/rand use and constant rand.NewSource seeds",
	Run:  runUnseededRand,
}

// randConstructors are the math/rand functions that build explicit
// generators rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runUnseededRand(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "math/rand" {
				return true
			}
			name := sel.Sel.Name
			if !randConstructors[name] {
				p.Reportf(call.Pos(), "math/rand.%s draws from the process-global generator; thread a seeded *rand.Rand instead", name)
				return true
			}
			if name == "NewSource" && len(call.Args) == 1 {
				if tv, ok := p.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
					p.Reportf(call.Pos(), "rand.NewSource with constant seed %s; thread the seed from a parameter so runs are reproducible on demand", tv.Value)
				}
			}
			return true
		})
	}
}
