package analyze

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Annotation vocabulary. Annotations live in a function's doc comment
// and seed the interprocedural fact store:
//
//	//errprop:deterministic [reason]
//	//errprop:bound-source [reason]
//
// "deterministic" declares the function a root of a deterministic
// context: its result must be a pure function of its inputs, with
// fixed-order float computation and no wall-clock or iteration-order
// dependence. The fact propagates DOWN the call graph — everything a
// deterministic root (transitively) calls runs in a deterministic
// context and is policed by the walltime analyzer.
//
// "bound-source" declares that the function's float results carry an
// achieved error bound (e.g. a codec's measured reconstruction error)
// that the caller must thread into the Inequality (3) accounting. The
// fact propagates UP the call graph through return-wrappers: a function
// that returns a value obtained from a bound-source is itself a
// bound-source, so boundflow sees through thin forwarding helpers.
const (
	annotationPrefix = "//errprop:"
	AnnDeterministic = "deterministic"
	AnnBoundSource   = "bound-source"
)

// Facts is the per-function fact store computed by NewProgram.
type Facts struct {
	// Deterministic maps each function known to run in a deterministic
	// context to a human-readable origin ("annotated" or the root it is
	// reachable from).
	Deterministic map[Symbol]string
	// BoundSource maps each function whose float results carry an
	// achieved error bound to its origin.
	BoundSource map[Symbol]string
}

// DeterministicContext reports whether sym runs in a deterministic
// context and, if so, why.
func (f *Facts) DeterministicContext(sym Symbol) (string, bool) {
	why, ok := f.Deterministic[sym]
	return why, ok
}

// IsBoundSource reports whether sym's float results carry an achieved
// error bound.
func (f *Facts) IsBoundSource(sym Symbol) bool {
	_, ok := f.BoundSource[sym]
	return ok
}

// Program is the whole-analysis view over every loaded package: the
// module call graph plus the propagated fact store. Analyzers reach it
// through Pass.Prog. Facts are computed from the packages actually
// loaded — running the driver on a subset of the module sees a subset
// of the annotations, so the CI gate runs it over ./... .
type Program struct {
	Packages []*Package
	Graph    *CallGraph
	Facts    *Facts

	// BadAnnotations are malformed //errprop: directives (unknown verb,
	// not attached to a function); surfaced as driver findings so a typo
	// cannot silently fail to seed a fact.
	BadAnnotations []Finding
}

// NewProgram builds the call graph over pkgs, seeds facts from
// annotations, and runs fixed-point propagation.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Packages: pkgs,
		Graph:    newCallGraph(),
		Facts: &Facts{
			Deterministic: map[Symbol]string{},
			BoundSource:   map[Symbol]string{},
		},
	}
	for _, pkg := range pkgs {
		prog.Graph.addPackage(pkg)
	}
	prog.seedFacts()
	prog.propagateDeterministic()
	prog.propagateBoundSources()
	return prog
}

// parseAnnotation splits an //errprop: comment into its verb; ok=false
// for comments that are not errprop annotations at all.
func parseAnnotation(text string) (verb string, ok bool) {
	rest, found := strings.CutPrefix(strings.TrimSpace(text), annotationPrefix)
	if !found {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", true // bare "//errprop:" — malformed, caught by caller
	}
	return fields[0], true
}

// seedFacts scans every declaration's doc comment for annotations.
// Annotations on non-function declarations or with unknown verbs are
// recorded as BadAnnotations.
func (p *Program) seedFacts() {
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					verb, isAnn := parseAnnotation(c.Text)
					if !isAnn {
						continue
					}
					fn := p.annotatedFunc(pkg, file, cg)
					switch {
					case fn == nil:
						p.badAnnotation(pkg, c, "annotation is not attached to a function declaration")
					case verb == AnnDeterministic:
						sym, _, ok := declSymbol(pkg.Info, fn)
						if ok {
							p.Facts.Deterministic[sym] = "annotated //errprop:deterministic"
						}
					case verb == AnnBoundSource:
						sym, obj, ok := declSymbol(pkg.Info, fn)
						if !ok {
							break
						}
						if countFloatResults(obj) == 0 {
							p.badAnnotation(pkg, c, "bound-source %s has no float results to carry a bound", fn.Name.Name)
							break
						}
						p.Facts.BoundSource[sym] = "annotated //errprop:bound-source"
					default:
						p.badAnnotation(pkg, c, "unknown annotation verb %q (want %s or %s)", verb, AnnDeterministic, AnnBoundSource)
					}
				}
			}
		}
	}
}

func (p *Program) badAnnotation(pkg *Package, c *ast.Comment, format string, args ...any) {
	p.BadAnnotations = append(p.BadAnnotations, Finding{
		Analyzer: "driver",
		Package:  pkg.Path,
		Position: pkg.Fset.Position(c.Pos()),
		Message:  fmt.Sprintf(format, args...),
	})
}

// annotatedFunc returns the function declaration whose doc comment group
// cg is, or nil when cg is not a function doc comment.
func (p *Program) annotatedFunc(pkg *Package, file *ast.File, cg *ast.CommentGroup) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Doc == cg {
			return fn
		}
	}
	return nil
}

// countFloatResults counts float32/float64 results in obj's signature.
func countFloatResults(obj *types.Func) int {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return 0
	}
	n := 0
	for i := 0; i < sig.Results().Len(); i++ {
		if isFloat(sig.Results().At(i).Type()) {
			n++
		}
	}
	return n
}

// propagateDeterministic pushes the deterministic fact down call edges
// to a fixed point: everything reachable from an annotated root runs in
// a deterministic context.
func (p *Program) propagateDeterministic() {
	// Visit in sorted order so the recorded origin ("reachable from X")
	// does not depend on map iteration order — maporder caught the naive
	// version of this loop.
	work := make([]Symbol, 0, len(p.Facts.Deterministic))
	for sym := range p.Facts.Deterministic {
		work = append(work, sym)
	}
	sort.Slice(work, func(i, j int) bool { return work[i] < work[j] })
	for len(work) > 0 {
		sym := work[0]
		work = work[1:]
		for _, callee := range p.Graph.CalleesOf(sym) {
			if _, seen := p.Facts.Deterministic[callee]; seen {
				continue
			}
			p.Facts.Deterministic[callee] = fmt.Sprintf("reachable from deterministic %s", sym)
			work = append(work, callee)
		}
	}
}

// propagateBoundSources lifts the bound-source fact up through
// return-wrappers to a fixed point: a function returning a value that
// came from a bound-source call is itself a bound-source.
func (p *Program) propagateBoundSources() {
	for changed := true; changed; {
		changed = false
		for sym, info := range p.Graph.Decls {
			if _, have := p.Facts.BoundSource[sym]; have {
				continue
			}
			if info.Decl.Body == nil || countFloatResults(info.Obj) == 0 {
				continue
			}
			for _, src := range p.returnedCallSymbols(info) {
				if _, ok := p.Facts.BoundSource[src]; ok {
					p.Facts.BoundSource[sym] = fmt.Sprintf("returns bound from %s", src)
					changed = true
					break
				}
			}
		}
	}
}

// returnedCallSymbols collects the symbols of calls whose results may
// flow into info's return values: calls appearing directly in a return
// expression, and calls assigned to a local that a return expression
// names (including named results).
func (p *Program) returnedCallSymbols(info *FuncInfo) []Symbol {
	pkg := info.Pkg

	// Objects that reach a return: named results plus idents in returns.
	returned := map[types.Object]bool{}
	if res := info.Decl.Type.Results; res != nil {
		for _, field := range res.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					returned[obj] = true
				}
			}
		}
	}
	var out []Symbol
	addCallsIn := func(expr ast.Expr) {
		ast.Inspect(expr, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee, ok := calleeFunc(pkg.Info, call); ok {
					out = append(out, funcSymbol(callee))
				}
			}
			return true
		})
	}
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, expr := range ret.Results {
			addCallsIn(expr)
			if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
				if obj := pkg.Info.Uses[id]; obj != nil {
					returned[obj] = true
				}
			}
		}
		return true
	})
	// Second walk: assignments whose LHS is a returned object and whose
	// RHS contains a resolvable call.
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		feeds := false
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pkg.Info.Defs[id]
			if obj == nil {
				obj = pkg.Info.Uses[id]
			}
			if obj != nil && returned[obj] {
				feeds = true
			}
		}
		if feeds {
			for _, rhs := range as.Rhs {
				addCallsIn(rhs)
			}
		}
		return true
	})
	return out
}
