package analyze

import (
	"go/ast"
	"go/types"
)

// LossyConv flags float64 → float32 conversions inside the
// bound-computing packages (internal/core, internal/numfmt,
// internal/quant, internal/compress). All bound math is carried in
// float64; a float32 conversion silently injects up to 2^-24 relative
// error that the analysis does not account for. Deliberate narrowing —
// numfmt's FP32 rounding is the canonical case — must carry a
// //lint:ignore lossyconv justification so every truncation in a bound
// path is documented.
var LossyConv = &Analyzer{
	Name:  "lossyconv",
	Doc:   "flags float64→float32 truncation in bound-computing packages",
	Match: pathMatchAny("internal/core", "internal/numfmt", "internal/quant", "internal/compress"),
	Run:   runLossyConv,
}

func runLossyConv(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := p.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst, ok := tv.Type.Underlying().(*types.Basic)
			if !ok || dst.Kind() != types.Float32 {
				return true
			}
			argTV, ok := p.TypesInfo.Types[call.Args[0]]
			if !ok || argTV.Value != nil { // constant conversions round once, visibly
				return true
			}
			src, ok := argTV.Type.Underlying().(*types.Basic)
			if !ok || src.Kind() != types.Float64 {
				return true
			}
			p.Reportf(call.Pos(), "float64→float32 truncation in a bound-computing package loses up to 2^-24 relative precision; justify with //lint:ignore lossyconv if deliberate")
			return true
		})
	}
}
