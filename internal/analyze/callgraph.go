package analyze

import (
	"go/ast"
	"go/types"
	"sort"
)

// Symbol identifies a function across the loaded package set. It is the
// types.Func full name ("pkg/path.Func" or "(*pkg/path.Recv).Method"),
// which is stable across independent type-check runs of the same source —
// the source importer gives each directly loaded package its own
// types.Package, so object identity cannot be used as a cross-package
// key, but the rendered full name can.
type Symbol string

// FuncInfo is one function declaration found in a loaded package.
type FuncInfo struct {
	Sym  Symbol
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func
}

// CallGraph is the module-level call graph over every loaded package:
// nodes are Symbols, edges are syntactically resolvable calls (direct
// function calls and method calls on concrete receivers). Calls through
// interface methods, function-typed values and reflection are not
// resolved to their dynamic targets; the edge ends at the interface
// method's own symbol. That keeps the graph an under-approximation —
// fine for lint-grade fact propagation, wrong for soundness proofs, and
// exactly why the dynamic golden/equivalence tests remain the oracle of
// last resort (DESIGN.md).
type CallGraph struct {
	// Decls maps every function declared in the loaded packages.
	Decls map[Symbol]*FuncInfo
	// Callees maps caller -> set of callees.
	Callees map[Symbol]map[Symbol]bool
	// Callers is the reverse edge set.
	Callers map[Symbol]map[Symbol]bool
}

func newCallGraph() *CallGraph {
	return &CallGraph{
		Decls:   map[Symbol]*FuncInfo{},
		Callees: map[Symbol]map[Symbol]bool{},
		Callers: map[Symbol]map[Symbol]bool{},
	}
}

// addEdge records caller -> callee.
func (g *CallGraph) addEdge(caller, callee Symbol) {
	if g.Callees[caller] == nil {
		g.Callees[caller] = map[Symbol]bool{}
	}
	g.Callees[caller][callee] = true
	if g.Callers[callee] == nil {
		g.Callers[callee] = map[Symbol]bool{}
	}
	g.Callers[callee][caller] = true
}

// CalleesOf returns the sorted callee list of sym (empty when none).
func (g *CallGraph) CalleesOf(sym Symbol) []Symbol {
	return sortedSymbols(g.Callees[sym])
}

// CallersOf returns the sorted caller list of sym (empty when none).
func (g *CallGraph) CallersOf(sym Symbol) []Symbol {
	return sortedSymbols(g.Callers[sym])
}

func sortedSymbols(set map[Symbol]bool) []Symbol {
	out := make([]Symbol, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// funcSymbol renders the canonical symbol for a types.Func.
func funcSymbol(f *types.Func) Symbol { return Symbol(f.FullName()) }

// declSymbol resolves a FuncDecl to its symbol via the type info's Defs.
func declSymbol(info *types.Info, fn *ast.FuncDecl) (Symbol, *types.Func, bool) {
	obj, ok := info.Defs[fn.Name].(*types.Func)
	if !ok {
		return "", nil, false
	}
	return funcSymbol(obj), obj, true
}

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or ok=false for calls the static graph cannot follow (function-typed
// values, type conversions, builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f, true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f, true
			}
			return nil, false
		}
		// Package-qualified call: pkg.Func has no Selection entry; the
		// Sel ident resolves directly.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f, true
		}
	}
	return nil, false
}

// addPackage walks every function declaration in pkg, registering the
// declaration and one edge per statically resolvable call in its body.
// Calls inside function literals are attributed to the enclosing
// declaration: the literal usually runs on behalf of its host (directly,
// deferred, or as a spawned worker), and over-attributing keeps
// downward-propagated facts like "runs in a deterministic context"
// conservative rather than blind.
func (g *CallGraph) addPackage(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			sym, obj, ok := declSymbol(pkg.Info, fn)
			if !ok {
				continue
			}
			g.Decls[sym] = &FuncInfo{Sym: sym, Pkg: pkg, Decl: fn, Obj: obj}
			if fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee, ok := calleeFunc(pkg.Info, call); ok {
					g.addEdge(sym, funcSymbol(callee))
				}
				return true
			})
		}
	}
}
