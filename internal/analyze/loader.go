package analyze

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads module packages from source. Dependencies (stdlib and
// module-internal alike) are resolved by the standard library's source
// importer, which shells out to the go command for module path
// resolution — so loading must run with the module root as the working
// directory; NewLoader enforces that.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string
	// IncludeTests adds *_test.go files of the package under test (not
	// external _test packages) to the loaded file set.
	IncludeTests bool

	imp types.ImporterFrom
}

// NewLoader finds the enclosing module of dir (walking up to the
// directory holding go.mod), reads its module path, and returns a loader
// rooted there. The process working directory is switched to the module
// root so the source importer's go-command fallback resolves
// module-internal import paths.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analyze: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := moduleName(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	if err := os.Chdir(root); err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analyze: source importer lacks ImporterFrom")
	}
	return &Loader{Fset: fset, ModulePath: modPath, ModuleDir: root, imp: imp}, nil
}

// moduleName extracts the module path from a go.mod file without
// depending on golang.org/x/mod.
func moduleName(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			name := strings.TrimSpace(rest)
			name = strings.Trim(name, `"`)
			if name != "" {
				return name, nil
			}
		}
	}
	return "", fmt.Errorf("analyze: no module directive in %s", gomod)
}

// Target is one package selected by Expand.
type Target struct {
	Dir  string
	Path string
}

// Expand resolves go-style package patterns ("./...", "./internal/core",
// "github.com/.../internal/..." ) against the module tree. Directories
// named testdata, hidden directories and directories without buildable
// .go files are skipped, mirroring the go tool.
func (l *Loader) Expand(patterns []string) ([]Target, error) {
	seen := map[string]bool{}
	var out []Target
	add := func(dir string) error {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return err
		}
		if seen[abs] {
			return nil
		}
		if !hasGoFiles(abs) {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return fmt.Errorf("analyze: %s is outside module %s", dir, l.ModuleDir)
		}
		seen[abs] = true
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		out = append(out, Target{Dir: abs, Path: path})
		return nil
	}
	for _, pat := range patterns {
		// Accept import-path patterns for the module itself.
		if rest, ok := strings.CutPrefix(pat, l.ModulePath); ok {
			pat = "." + rest
			if pat == "." {
				pat = "./."
			}
		}
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		if !recursive {
			// An explicitly named directory must exist and contain Go
			// files — silently reporting "clean" on a typo'd path would
			// defeat the point of the gate.
			if fi, err := os.Stat(pat); err != nil {
				return nil, fmt.Errorf("analyze: %s: %w", pat, err)
			} else if !fi.IsDir() {
				return nil, fmt.Errorf("analyze: %s is not a directory", pat)
			}
			if abs, err := filepath.Abs(pat); err == nil && !hasGoFiles(abs) {
				return nil, fmt.Errorf("analyze: no Go files in %s", pat)
			}
			if err := add(pat); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && p != pat) || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return add(p)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		return true
	}
	return false
}

// Load parses and type-checks the target package.
func (l *Loader) Load(t Target) (*Package, error) {
	return l.LoadDir(t.Dir, t.Path)
}

// LoadDir parses and type-checks the package in dir under the given
// import path. The explicit path lets tests load fixture packages under
// testdata/ as if they lived at an arbitrary module path, exercising
// analyzers whose Match filters on package path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.IncludeTests {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analyze: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyze: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}
