package analyze

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baseline is a recorded set of accepted findings. The CI gate compares
// a fresh run against it and fails only on findings the baseline does
// not cover, so a new analyzer (or a newly annotated root) can land
// without forcing a big-bang cleanup: record the current state, burn it
// down incrementally, and still catch every regression from day one.
//
// Entries key on (analyzer, file, message) with an occurrence count —
// deliberately NOT on line numbers, which churn with every unrelated
// edit above the finding. Moving a baselined finding around a file does
// not trip the gate; adding a second identical one does.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry is one accepted (analyzer, file, message) with the
// number of occurrences accepted.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	// File is the module-relative path (slash-separated) of the finding.
	File    string `json:"file"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

type baselineKey struct {
	analyzer, file, message string
}

// relFile renders a finding's file module-relative for stable baselines
// across checkouts.
func relFile(moduleDir, filename string) string {
	if rel, err := filepath.Rel(moduleDir, filename); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// NewBaseline records findings as a baseline.
func NewBaseline(findings []Finding, moduleDir string) *Baseline {
	counts := map[baselineKey]int{}
	for _, f := range findings {
		counts[baselineKey{f.Analyzer, relFile(moduleDir, f.Position.Filename), f.Message}]++
	}
	b := &Baseline{Entries: make([]BaselineEntry, 0, len(counts))}
	for k, n := range counts {
		b.Entries = append(b.Entries, BaselineEntry{Analyzer: k.analyzer, File: k.file, Message: k.message, Count: n})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// WriteBaseline writes the baseline as indented JSON.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a baseline written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analyze: baseline %s: %w", path, err)
	}
	return &b, nil
}

// FilterBaseline returns the findings not covered by the baseline: each
// (analyzer, file, message) key absorbs up to its accepted count, in
// the sorted order Run produces, and everything beyond that is new.
func FilterBaseline(findings []Finding, b *Baseline, moduleDir string) []Finding {
	budget := map[baselineKey]int{}
	for _, e := range b.Entries {
		budget[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	var fresh []Finding
	for _, f := range findings {
		k := baselineKey{f.Analyzer, relFile(moduleDir, f.Position.Filename), f.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh
}
