package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroOrder flags goroutines that accumulate into shared floating-point
// state: a `go`-launched function literal (or a local function literal
// it calls) compound-assigning to a float variable captured from the
// enclosing function. Even with a mutex making the accesses safe, the
// accumulation order follows the goroutine schedule, so the float sum
// differs bit-for-bit run to run — breaking the trainer's invariant
// that Workers=1 and Workers=N produce identical trajectories.
//
// The sanctioned idiom (nn.Trainer) is untouched: workers store into
// per-shard slots (plain assignment, or element access indexed by a
// goroutine-local variable) and a fixed pairwise reduction combines the
// slots after the goroutines join.
var GoroOrder = &Analyzer{
	Name: "gororder",
	Doc:  "flags shared float accumulation across goroutines without a fixed reduction order",
	Run:  runGoroOrder,
}

func runGoroOrder(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			locals := localFuncLits(p.TypesInfo, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit := goTargetLit(p.TypesInfo, g.Call, locals); lit != nil {
					checkGoroBody(p, lit, locals, map[*ast.FuncLit]bool{})
				}
				return true
			})
		}
	}
}

// localFuncLits maps local variables to the function literals assigned
// to them (the `run := func(...) {...}; go func() { run(w) }()` idiom).
func localFuncLits(info *types.Info, body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			lit, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit)
			if !ok {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				out[obj] = lit
			} else if obj := info.Uses[id]; obj != nil {
				out[obj] = lit
			}
		}
		return true
	})
	return out
}

// goTargetLit resolves the body a go statement will run, when it is a
// function literal or a local variable bound to one.
func goTargetLit(info *types.Info, call *ast.CallExpr, locals map[types.Object]*ast.FuncLit) *ast.FuncLit {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun
	case *ast.Ident:
		if obj := info.Uses[fun]; obj != nil {
			return locals[obj]
		}
	}
	return nil
}

// checkGoroBody walks one goroutine body, flagging float accumulation
// into variables declared outside it; calls to other local function
// literals are followed (they execute on this goroutine).
func checkGoroBody(p *Pass, lit *ast.FuncLit, locals map[types.Object]*ast.FuncLit, seen map[*ast.FuncLit]bool) {
	if seen[lit] {
		return
	}
	seen[lit] = true
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			switch st.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range st.Lhs {
					checkGoroAccum(p, lit, lhs)
				}
			case token.ASSIGN:
				// x = x + v with captured x is the same accumulation.
				for i, lhs := range st.Lhs {
					if i < len(st.Rhs) && selfAccum(p.TypesInfo, lhs, st.Rhs[i]) {
						checkGoroAccum(p, lit, lhs)
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok {
				if obj := p.TypesInfo.Uses[id]; obj != nil {
					if inner := locals[obj]; inner != nil {
						checkGoroBody(p, inner, locals, seen)
					}
				}
			}
		}
		return true
	})
}

// checkGoroAccum reports lhs when it is float-typed, rooted outside the
// goroutine, and not a per-slot element access indexed by a
// goroutine-local variable.
func checkGoroAccum(p *Pass, lit *ast.FuncLit, lhs ast.Expr) {
	t := p.TypesInfo.TypeOf(lhs)
	if t == nil || !isFloat(t) {
		return
	}
	obj := rootObject(p.TypesInfo, lhs)
	if obj == nil || withinNode(lit, obj.Pos()) {
		return // goroutine-local accumulator: joins via channel/slot later
	}
	// Per-slot idiom: s[i] += v with i local to the goroutine writes a
	// slot no other goroutine touches; the cross-slot reduction happens
	// after the join in a fixed order.
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && indexIsLocal(p.TypesInfo, lit, idx.Index) {
		return
	}
	p.Reportf(lhs.Pos(), "goroutine accumulates into shared float %s: the schedule becomes the reduction order; use per-shard slots and a fixed pairwise reduction after the join (see nn.Trainer)", obj.Name())
}

// selfAccum reports whether rhs is an arithmetic expression mentioning
// lhs's root object (x = x + v and friends).
func selfAccum(info *types.Info, lhs, rhs ast.Expr) bool {
	bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	obj := rootObject(info, lhs)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// indexIsLocal reports whether every object the index expression reads
// is declared inside the goroutine body (or its parameters), so each
// goroutine addresses its own slot.
func indexIsLocal(info *types.Info, lit *ast.FuncLit, index ast.Expr) bool {
	local := true
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true // constants, funcs: position-independent
		}
		if !withinNode(lit, obj.Pos()) {
			local = false
		}
		return local
	})
	return local
}
