package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/scidata/errprop/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs flattened into the
// (features x batch) matrix convention (feature index = (c*H+h)*W+w).
// Like Dense it supports the PSN reparameterization; sigma here is the
// spectral norm of the *convolution operator* (estimated by power
// iteration through the operator and its adjoint), so under PSN the
// whole conv layer has operator norm exactly |alpha|.
type Conv2D struct {
	InC, H, W            int // input geometry
	OutC, K, Stride, Pad int
	Wt                   *Param // OutC x (InC*K*K)
	B                    *Param // OutC
	PSN                  bool
	Alpha                *Param

	sigmaRaw    float64
	sigmaOK     bool
	sigmaFrozen bool          // per-forward stepping disabled (see Network.SetSigmaStepping)
	vop         tensor.Vector // warm-start vector for operator power iteration

	inCols *tensor.Matrix // cached im2col for backward
	batch  int
	effW   *tensor.Matrix

	// Scratch reused across train-mode steps (see Dense).
	effWBuf, zBuf, outBuf, dzBuf, dEffBuf, dcolsBuf *tensor.Matrix

	name string
}

// NewConv2D builds a conv layer for a fixed input geometry.
func NewConv2D(name string, inC, h, w, outC, k, stride, pad int, psn bool, rng *rand.Rand) *Conv2D {
	c := &Conv2D{InC: inC, H: h, W: w, OutC: outC, K: k, Stride: stride, Pad: pad, PSN: psn, name: name}
	c.Wt = NewParam(name+".W", outC*inC*k*k)
	c.B = NewParam(name+".B", outC)
	initKaiming(c.Wt.Data, inC*k*k, rng)
	if psn {
		c.RefreshSigma()
		c.Alpha = NewParam(name+".alpha", 1)
		c.Alpha.Data[0] = c.sigmaRaw
	}
	return c
}

// NewConv2DFromWeights wraps explicit kernel weights into a plain conv
// layer (quantized inference copies).
func NewConv2DFromWeights(name string, inC, h, w, outC, k, stride, pad int, wt, b []float64) *Conv2D {
	if len(wt) != outC*inC*k*k || len(b) != outC {
		panic("nn: NewConv2DFromWeights shape mismatch")
	}
	c := &Conv2D{InC: inC, H: h, W: w, OutC: outC, K: k, Stride: stride, Pad: pad, name: name}
	c.Wt = &Param{Name: name + ".W", Data: wt, Grad: make([]float64, len(wt))}
	c.B = &Param{Name: name + ".B", Data: b, Grad: make([]float64, len(b))}
	return c
}

// OutH returns the output height.
func (c *Conv2D) OutH() int { return tensor.ConvOutSize(c.H, c.K, c.Stride, c.Pad) }

// OutW returns the output width.
func (c *Conv2D) OutW() int { return tensor.ConvOutSize(c.W, c.K, c.Stride, c.Pad) }

// InDim returns the flattened input feature count.
func (c *Conv2D) InDim() int { return c.InC * c.H * c.W }

// OutDim returns the flattened output feature count.
func (c *Conv2D) OutDim() int { return c.OutC * c.OutH() * c.OutW() }

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

func (c *Conv2D) rawMatrix() *tensor.Matrix {
	return tensor.NewMatrixFrom(c.OutC, c.InC*c.K*c.K, c.Wt.Data)
}

// applyOp applies the (bias-free) convolution operator with kernel kw to a
// single flattened input vector.
func (c *Conv2D) applyOp(kw *tensor.Matrix, x tensor.Vector) tensor.Vector {
	t := tensor.NewT4From(1, c.InC, c.H, c.W, x)
	cols := tensor.Im2Col(t, c.K, c.K, c.Stride, c.Pad)
	z := kw.Mul(cols) // OutC x (outH*outW)
	return tensor.Vector(z.Data)
}

// applyAdjoint applies the operator's adjoint to a flattened output vector.
func (c *Conv2D) applyAdjoint(kw *tensor.Matrix, y tensor.Vector) tensor.Vector {
	z := tensor.NewMatrixFrom(c.OutC, c.OutH()*c.OutW(), y)
	cols := kw.T().Mul(z)
	t := tensor.Col2Im(cols, 1, c.InC, c.H, c.W, c.K, c.K, c.Stride, c.Pad)
	return tensor.Vector(t.Data)
}

// operatorSigma estimates the conv operator's spectral norm by power
// iteration through applyOp / applyAdjoint.
func (c *Conv2D) operatorSigma(kw *tensor.Matrix, iters int) float64 {
	n := c.InDim()
	v := c.vop
	if len(v) != n {
		//lint:ignore unseededrand fixed-seed start direction keeps power iteration deterministic; any non-orthogonal direction works
		rng := rand.New(rand.NewSource(7))
		v = make(tensor.Vector, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
	}
	if v.Normalize() == 0 {
		v[0] = 1
	}
	var sigma float64
	for k := 0; k < iters; k++ {
		u := c.applyOp(kw, v)
		if u.Normalize() == 0 {
			c.vop = v
			return 0
		}
		v = c.applyAdjoint(kw, u)
		sigma = v.Normalize()
		if sigma == 0 {
			c.vop = v
			return 0
		}
	}
	c.vop = v
	return sigma
}

// RefreshSigma recomputes the operator norm from scratch. 120 iterations
// keep independent runs (e.g. a saved model reloaded cold) within ~1e-6
// of each other even when the top singular values cluster.
func (c *Conv2D) RefreshSigma() {
	c.sigmaRaw = c.operatorSigma(c.rawMatrix(), 120)
	c.sigmaOK = true
}

// ensureSigma computes the operator norm if no fresh estimate exists.
func (c *Conv2D) ensureSigma() {
	if !c.sigmaOK {
		c.RefreshSigma()
	}
}

func (c *Conv2D) stepSigma() {
	c.sigmaRaw = c.operatorSigma(c.rawMatrix(), 2)
	c.sigmaOK = true
}

// EffectiveKernel returns the kernel matrix actually applied (PSN-scaled
// when enabled).
func (c *Conv2D) EffectiveKernel() *tensor.Matrix {
	if !c.PSN {
		return c.rawMatrix()
	}
	c.ensureSigma()
	if c.sigmaRaw == 0 {
		return c.rawMatrix().Clone()
	}
	s := c.Alpha.Data[0] / c.sigmaRaw
	out := tensor.NewMatrix(c.OutC, c.InC*c.K*c.K)
	for i, w := range c.Wt.Data {
		out.Data[i] = w * s
	}
	return out
}

// matToT4 reshapes a (C*H*W x batch) matrix into an NCHW tensor.
func matToT4(x *tensor.Matrix, ch, h, w int) *tensor.T4 {
	batch := x.Cols
	t := tensor.NewT4(batch, ch, h, w)
	feat := ch * h * w
	for n := 0; n < batch; n++ {
		dst := t.Data[n*feat : (n+1)*feat]
		for f := 0; f < feat; f++ {
			dst[f] = x.Data[f*batch+n]
		}
	}
	return t
}

// t4ToMat reshapes an NCHW tensor into a (C*H*W x batch) matrix.
func t4ToMat(t *tensor.T4) *tensor.Matrix {
	feat := t.C * t.H * t.W
	m := tensor.NewMatrix(feat, t.N)
	for n := 0; n < t.N; n++ {
		src := t.Data[n*feat : (n+1)*feat]
		for f := 0; f < feat; f++ {
			m.Data[f*t.N+n] = src[f]
		}
	}
	return m
}

// effectiveKernelInto is EffectiveKernel writing into a reusable scratch
// buffer (train path). Non-PSN layers return the shared raw view.
func (c *Conv2D) effectiveKernelInto(dst *tensor.Matrix) *tensor.Matrix {
	if !c.PSN {
		return c.rawMatrix()
	}
	c.ensureSigma()
	if c.sigmaRaw == 0 {
		return dst.CopyFrom(c.rawMatrix())
	}
	s := c.Alpha.Data[0] / c.sigmaRaw
	dst = tensor.EnsureMatrix(dst, c.OutC, c.InC*c.K*c.K)
	for i, w := range c.Wt.Data {
		dst.Data[i] = w * s
	}
	return dst
}

// Forward implements Layer. As with Dense, the train path reuses
// layer-owned scratch; the returned matrix is valid until the next
// train-mode Forward on this layer.
func (c *Conv2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Rows != c.InDim() {
		panic(fmt.Sprintf("nn: %s input rows %d != %d", c.name, x.Rows, c.InDim()))
	}
	batch := x.Cols
	t := matToT4(x, c.InC, c.H, c.W)
	//lint:ignore hotalloc legacy per-call layer path; the compiled engine (infer.go) unrolls via Im2ColMatInto into a reused buffer
	cols := tensor.Im2Col(t, c.K, c.K, c.Stride, c.Pad)
	var kw, z, out *tensor.Matrix
	if train {
		if c.PSN && !c.sigmaFrozen {
			c.stepSigma()
		}
		c.inCols = cols
		c.batch = batch
		if c.PSN {
			c.effWBuf = c.effectiveKernelInto(c.effWBuf)
			kw = c.effWBuf
		} else {
			kw = c.rawMatrix()
		}
		c.effW = kw
		c.zBuf = kw.MulInto(cols, c.zBuf)
		z = c.zBuf
	} else {
		kw = c.EffectiveKernel()
		z = kw.Mul(cols) // OutC x (batch*outH*outW)
	}
	outH, outW := c.OutH(), c.OutW()
	spatial := outH * outW
	if train {
		c.outBuf = tensor.EnsureMatrix(c.outBuf, c.OutC*spatial, batch)
		out = c.outBuf
	} else {
		//lint:ignore hotalloc legacy per-call layer path; the compiled engine (infer.go) is the zero-alloc fast path
		out = tensor.NewMatrix(c.OutC*spatial, batch)
	}
	for oc := 0; oc < c.OutC; oc++ {
		b := c.B.Data[oc]
		zrow := z.Data[oc*z.Cols : (oc+1)*z.Cols]
		for n := 0; n < batch; n++ {
			for s := 0; s < spatial; s++ {
				out.Data[(oc*spatial+s)*batch+n] = zrow[n*spatial+s] + b
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if c.inCols == nil {
		panic("nn: conv Backward before Forward(train)")
	}
	batch := c.batch
	outH, outW := c.OutH(), c.OutW()
	spatial := outH * outW
	// Rearrange grad (OutC*spatial x batch) -> (OutC x batch*spatial).
	c.dzBuf = tensor.EnsureMatrix(c.dzBuf, c.OutC, batch*spatial)
	dz := c.dzBuf
	for oc := 0; oc < c.OutC; oc++ {
		var db float64
		drow := dz.Data[oc*dz.Cols : (oc+1)*dz.Cols]
		for n := 0; n < batch; n++ {
			for s := 0; s < spatial; s++ {
				g := grad.Data[(oc*spatial+s)*batch+n]
				drow[n*spatial+s] = g
				db += g
			}
		}
		c.B.Grad[oc] += db
	}
	c.dEffBuf = dz.MulBTInto(c.inCols, c.dEffBuf)
	dEff := c.dEffBuf
	if !c.PSN {
		for i := range c.Wt.Grad {
			c.Wt.Grad[i] += dEff.Data[i]
		}
	} else {
		s := c.Alpha.Data[0] / c.sigmaRaw
		var dAlpha float64
		for i := range c.Wt.Grad {
			c.Wt.Grad[i] += s * dEff.Data[i]
			dAlpha += c.Wt.Data[i] / c.sigmaRaw * dEff.Data[i]
		}
		c.Alpha.Grad[0] += dAlpha
	}
	c.dcolsBuf = c.effW.TMulInto(dz, c.dcolsBuf)
	dt := tensor.Col2Im(c.dcolsBuf, batch, c.InC, c.H, c.W, c.K, c.K, c.Stride, c.Pad)
	return t4ToMat(dt)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	p := []*Param{c.Wt, c.B}
	if c.Alpha != nil {
		p = append(p, c.Alpha)
	}
	return p
}

// LinearOp implements Spectral. The gains generalize the paper's dense
// formulas to convolution: each output element is an inner product of
// InC*K*K quantized weights with a patch of h, and each input element
// feeds at most K*K/Stride^2 output positions per output channel, giving
//
//	AddGain  = sqrt(OutC) * K / Stride
//	InflGain = sqrt(min(InC*K*K, OutC)) * K / Stride
//
// (for a 1x1 stride-1 conv these reduce to the dense expressions).
func (c *Conv2D) LinearOp() LinearOp {
	c.ensureSigma()
	kw := c.EffectiveKernel()
	var sigma float64
	if c.PSN {
		sigma = math.Abs(c.Alpha.Data[0])
	} else {
		sigma = c.sigmaRaw
	}
	ratio := float64(c.K) / float64(c.Stride)
	return LinearOp{
		LayerName: c.name,
		Weights:   kw.Data,
		Sigma:     sigma,
		InDim:     c.InDim(),
		OutDim:    c.OutDim(),
		WRows:     c.OutC,
		WCols:     c.InC * c.K * c.K,
		AddGain:   math.Sqrt(float64(c.OutC)) * ratio,
		InflGain:  math.Sqrt(math.Min(float64(c.InC*c.K*c.K), float64(c.OutC))) * ratio,
	}
}

// AddRegGrad implements Regularized (see Dense.AddRegGrad).
func (c *Conv2D) AddRegGrad(lambda float64) float64 {
	if !c.PSN {
		c.ensureSigma()
		return lambda * c.sigmaRaw * c.sigmaRaw
	}
	a := c.Alpha.Data[0]
	c.Alpha.Grad[0] += 2 * lambda * a
	return lambda * a * a
}
