package nn

import "fmt"

// Clone returns a deep copy of the parameter: independent Data and Grad
// slices under the same name.
func (p *Param) Clone() *Param {
	return &Param{
		Name: p.Name,
		Data: append([]float64(nil), p.Data...),
		Grad: append([]float64(nil), p.Grad...),
	}
}

// Clone returns an independent replica of the network: deep-copied
// parameters, freshly allocated layer state, and transferred spectral-norm
// estimates. The replica shares only the (immutable) *Spec with the
// original.
//
// Clone exists because a *Network is NOT safe for concurrent use, even
// for inference: Forward caches per-layer state for Backward when
// train=true, and several layers lazily refresh internal spectral state
// (power-iteration vectors, sigma estimates) on first use even with
// train=false. Concurrent servers must therefore run one replica per
// goroutine; Clone makes those replicas cheap and exactly equivalent —
// a clone's Forward is bit-identical to the original's.
//
// Clone itself must not race with a Forward/Backward on the receiver
// (it reads parameter data and may lazily compute missing sigma
// estimates). Networks without a Spec (hand-assembled layer slices)
// cannot be cloned.
func (n *Network) Clone() (*Network, error) {
	if n.Spec == nil {
		return nil, fmt.Errorf("nn: network has no Spec; cannot clone")
	}
	c, err := n.Spec.Build(0)
	if err != nil {
		return nil, fmt.Errorf("nn: clone rebuild: %w", err)
	}
	src, dst := n.Params(), c.Params()
	if len(src) != len(dst) {
		return nil, fmt.Errorf("nn: clone parameter count mismatch %d vs %d", len(src), len(dst))
	}
	for i, p := range src {
		if len(p.Data) != len(dst[i].Data) {
			return nil, fmt.Errorf("nn: clone parameter %s length mismatch %d vs %d", p.Name, len(p.Data), len(dst[i].Data))
		}
		copy(dst[i].Data, p.Data)
		copy(dst[i].Grad, p.Grad)
	}
	// Transfer the spectral-norm estimates so the clone's PSN effective
	// weights match the original's bit for bit; recompute on any
	// structural mismatch.
	if !c.setSpectralSigmas(n.spectralSigmas()) {
		c.RefreshSigmas()
	}
	return c, nil
}
