package nn

import (
	"fmt"
	"math/rand"

	"github.com/scidata/errprop/internal/tensor"
	"testing"
)

// Benchmarks for the blocked/fused/sharded engine paths on the paper's
// heavier model shapes (the MLP benchmarks live in infer_test.go). Each
// naive-vs-engine pair shares its spec and input so ns/op deltas are the
// kernel schedule alone; BENCH_infer.json rows are produced from the
// same shapes by internal/serve's TestWriteInferBenchJSON.

func benchConvNet(b *testing.B) *Network {
	b.Helper()
	net, err := ResNetSpec("bench-conv", 1, 8, 8, 4, []int{1, 1}, []int{4, 8}, ActReLU, true).Build(17)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// benchAttnSpec is a transformer-block shape big enough for the q/k/v
// and score matmuls to dominate (T=16 tokens, D=32 features).
func benchAttnSpec() *Spec {
	return &Spec{
		Name: "bench-attn", InputDim: 16 * 32,
		Layers: []LayerSpec{
			{Type: "attention", Name: "sa", In: 16, Out: 32},
			{Type: "act", Act: ActTanh},
			{Type: "dense", Name: "head", In: 16 * 32, Out: 64},
		},
	}
}

func benchAttnNet(b *testing.B) *Network {
	b.Helper()
	net, err := benchAttnSpec().Build(19)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

func runForwardBench(b *testing.B, inDim int, f func(x *tensor.Matrix)) {
	b.Helper()
	for _, batch := range []int{1, 16, 64} {
		batch := batch
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			x := randInferBatch(rand.New(rand.NewSource(3)), inDim, batch)
			f(x) // warm arenas outside the timed region
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f(x)
			}
		})
	}
}

func BenchmarkForwardLegacyConv(b *testing.B) {
	net := benchConvNet(b)
	runForwardBench(b, net.InputDim, func(x *tensor.Matrix) { net.Forward(x, false) })
}

func BenchmarkForwardEngineConv(b *testing.B) {
	net := benchConvNet(b)
	eng, err := CompileInference(net, 64)
	if err != nil {
		b.Fatal(err)
	}
	runForwardBench(b, net.InputDim, func(x *tensor.Matrix) { eng.Forward(x) })
}

func BenchmarkForwardEngineConvSharded(b *testing.B) {
	net := benchConvNet(b)
	eng, err := CompileInferenceSharded(net, 64, 2)
	if err != nil {
		b.Fatal(err)
	}
	runForwardBench(b, net.InputDim, func(x *tensor.Matrix) { eng.Forward(x) })
}

func BenchmarkForwardLegacyAttention(b *testing.B) {
	net := benchAttnNet(b)
	runForwardBench(b, net.InputDim, func(x *tensor.Matrix) { net.Forward(x, false) })
}

func BenchmarkForwardEngineAttention(b *testing.B) {
	net := benchAttnNet(b)
	eng, err := CompileInference(net, 64)
	if err != nil {
		b.Fatal(err)
	}
	runForwardBench(b, net.InputDim, func(x *tensor.Matrix) { eng.Forward(x) })
}
