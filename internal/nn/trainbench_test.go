package nn

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/scidata/errprop/internal/tensor"
)

// Training-throughput benchmarks for the data-parallel trainer: a legacy
// serial-loop baseline against Trainer at several worker counts, on the
// two paper regression models. Results feed BENCH_train.json (see
// TestWriteTrainBenchJSON / `make bench-train`).

// benchModel is one benchmarked training configuration.
type benchModel struct {
	name   string
	dims   []int
	act    string
	batch  int
	shard  int
	lambda float64
	steps  int
}

func benchModels() []benchModel {
	return []benchModel{
		// The paper's H2 combustion MLP.
		{name: "h2-mlp-9-50-50-9", dims: []int{9, 50, 50, 9}, act: ActTanh,
			batch: 256, shard: 32, lambda: 1e-4, steps: 40},
		// The paper's Borghesi flame model: 8 hidden layers of 32.
		{name: "borghesi-mlp-13-32x8-3", dims: []int{13, 32, 32, 32, 32, 32, 32, 32, 32, 3}, act: ActPReLU,
			batch: 256, shard: 32, lambda: 1e-4, steps: 40},
	}
}

func benchData(m benchModel, seed int64) (x, y *tensor.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	in, out := m.dims[0], m.dims[len(m.dims)-1]
	x = tensor.NewMatrix(in, m.batch)
	y = tensor.NewMatrix(out, m.batch)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	return x, y
}

func benchNet(tb testing.TB, m benchModel) *Network {
	tb.Helper()
	net, err := MLPSpec(m.name, m.dims, m.act, true).Build(99)
	if err != nil {
		tb.Fatal(err)
	}
	return net
}

// runSerialBaseline is the pre-Trainer training loop the experiments
// package used: one full-batch forward/backward per step on the master
// network itself.
func runSerialBaseline(tb testing.TB, m benchModel, steps int) (secs, finalLoss float64, params []float64) {
	tb.Helper()
	net := benchNet(tb, m)
	x, y := benchData(m, 7)
	opt := NewSGD(0.01, 0.9, 0)
	opt.Prealloc(net.Params())
	start := time.Now()
	for s := 0; s < steps; s++ {
		net.ZeroGrad()
		out := net.Forward(x, true)
		l, g := MSELoss(out, y)
		finalLoss = l + net.AddRegGrad(m.lambda)
		net.Backward(g)
		opt.Step(net.Params())
	}
	return time.Since(start).Seconds(), finalLoss, snapshotParams(net)
}

// runTrainerBench trains the same configuration through the Trainer at
// the given worker count.
func runTrainerBench(tb testing.TB, m benchModel, workers, steps int) (secs, finalLoss float64, params []float64) {
	tb.Helper()
	net := benchNet(tb, m)
	x, y := benchData(m, 7)
	tr, err := NewTrainer(net, NewSGD(0.01, 0.9, 0), TrainConfig{Workers: workers, ShardSize: m.shard})
	if err != nil {
		tb.Fatal(err)
	}
	start := time.Now()
	for s := 0; s < steps; s++ {
		finalLoss = tr.StepMSE(x, y, m.lambda)
	}
	return time.Since(start).Seconds(), finalLoss, snapshotParams(net)
}

func snapshotParams(net *Network) []float64 {
	var out []float64
	for _, p := range net.Params() {
		out = append(out, p.Data...)
	}
	return out
}

type trainRun struct {
	Model       string  `json:"model"`
	Mode        string  `json:"mode"` // "serial-loop" or "trainer"
	Workers     int     `json:"workers"`
	ShardSize   int     `json:"shard_size"`
	Batch       int     `json:"batch"`
	Steps       int     `json:"steps"`
	Seconds     float64 `json:"seconds"`
	StepsPerSec float64 `json:"steps_per_sec"`
	FinalLoss   float64 `json:"final_loss"`
	// BitIdenticalToW1 reports whether this run's final parameters are
	// bit-for-bit equal to the Workers=1 trainer run — the determinism
	// invariant the trainer promises for every worker count.
	BitIdenticalToW1 bool `json:"bit_identical_to_workers1"`
}

// TestWriteTrainBenchJSON regenerates the committed training-throughput
// baseline. Run with:
//
//	ERRPROP_TRAIN_BENCH_OUT=BENCH_train.json go test ./internal/nn -run TestWriteTrainBenchJSON -count=1
//
// On a single-core runner the worker sweep cannot show wall-clock
// speedup — gomaxprocs in the output records the machine honestly; the
// bit_identical_to_workers1 column is the part that must hold anywhere.
func TestWriteTrainBenchJSON(t *testing.T) {
	out := os.Getenv("ERRPROP_TRAIN_BENCH_OUT")
	if out == "" {
		t.Skip("set ERRPROP_TRAIN_BENCH_OUT to write the training bench trajectory")
	}
	var runs []trainRun
	for _, m := range benchModels() {
		secs, loss, params := runSerialBaseline(t, m, m.steps)
		runs = append(runs, trainRun{Model: m.name, Mode: "serial-loop", Workers: 1,
			ShardSize: m.batch, Batch: m.batch, Steps: m.steps, Seconds: secs,
			StepsPerSec: float64(m.steps) / secs, FinalLoss: loss})
		var w1 []float64
		for _, workers := range []int{1, 2, 4, 8} {
			secs, loss, params = runTrainerBench(t, m, workers, m.steps)
			if workers == 1 {
				w1 = params
			}
			runs = append(runs, trainRun{Model: m.name, Mode: "trainer", Workers: workers,
				ShardSize: m.shard, Batch: m.batch, Steps: m.steps, Seconds: secs,
				StepsPerSec: float64(m.steps) / secs, FinalLoss: loss,
				BitIdenticalToW1: bitEqual(params, w1)})
			if !bitEqual(params, w1) {
				t.Errorf("%s workers=%d diverged bitwise from workers=1", m.name, workers)
			}
		}
	}
	doc := map[string]any{
		"bench":       "train",
		"description": "deterministic data-parallel trainer (internal/nn.Trainer) vs the legacy full-batch serial loop; steps_per_sec is optimizer steps per second, bit_identical_to_workers1 asserts the worker-count determinism invariant",
		"gomaxprocs":  runtime.GOMAXPROCS(0),
		"num_cpu":     runtime.NumCPU(),
		"optimizer":   "sgd lr=0.01 momentum=0.9",
		"runs":        runs,
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d runs, GOMAXPROCS=%d)", out, len(runs), runtime.GOMAXPROCS(0))
}

// BenchmarkTrainerStep measures one optimizer step end to end (sigma
// broadcast, sharded forward/backward, tree reduction, SGD update).
func BenchmarkTrainerStep(b *testing.B) {
	for _, m := range benchModels() {
		for _, workers := range []int{1, 4} {
			b.Run(m.name+"/workers="+string(rune('0'+workers)), func(b *testing.B) {
				net := benchNet(b, m)
				x, y := benchData(m, 7)
				tr, err := NewTrainer(net, NewSGD(0.01, 0.9, 0), TrainConfig{Workers: workers, ShardSize: m.shard})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tr.StepMSE(x, y, m.lambda)
				}
			})
		}
	}
}
