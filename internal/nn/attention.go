package nn

import (
	"fmt"
	"math"

	"github.com/scidata/errprop/internal/tensor"
)

// SelfAttention is a single-head scaled-dot-product self-attention layer
// over T tokens of dimension D: Q = XWq, K = XWk, V = XWv,
// Y = softmax(QK^T/sqrt(D)) V. Inputs arrive in the library's flattened
// convention (T*D features, token-major).
//
// This is the first step toward the transformer architectures the
// paper's future work targets. Softmax attention is not globally
// Lipschitz, so the error-flow analysis uses a *local* bound valid for
// token norms ||x_t||_2 <= R (guaranteed R = sqrt(D) for inputs
// normalized to [-1, 1], matching the paper's preprocessing and its own
// local-analysis remark for unbounded-derivative activations):
//
//	dY = dA·V + A·dV
//	||A·dV||_F        <= ||A||_2 sv ||dX||_F            <= sqrt(T) sv ||dX||_F
//	||dS||_F          <= (sq sk R (sqrt(T)+1)/sqrt(D)) ||dX||_F
//	||dA||_F          <= 1/2 ||dS||_F                    (softmax Jacobian norm <= 1/2)
//	||dA·V||_F        <= ||dA||_F ||V||_2               <= ||dA||_F sqrt(T) R sv
//
//	L_local <= sqrt(T) sv [ 1 + (sq sk R^2 (sqrt(T)+1)) / (2 sqrt(D)) ]
//
// with sq, sk, sv the spectral norms of Wq, Wk, Wv. The bound is
// conservative (the sqrt(T) factors assume fully concentrated
// attention); TestAttentionLocalLipschitzHolds validates it empirically.
type SelfAttention struct {
	T, D       int
	Wq, Wk, Wv *Param // D x D each, row-major

	// cached state for backward (per forward batch)
	inX        *tensor.Matrix
	q, k, v, a []*tensor.Matrix // per-sample T x D (a: T x T)

	name string
}

// NewSelfAttention builds a self-attention layer for T tokens of
// dimension D.
func NewSelfAttention(name string, tokens, dim int, rng interface{ NormFloat64() float64 }) *SelfAttention {
	s := &SelfAttention{T: tokens, D: dim, name: name}
	s.Wq = NewParam(name+".Wq", dim*dim)
	s.Wk = NewParam(name+".Wk", dim*dim)
	s.Wv = NewParam(name+".Wv", dim*dim)
	std := 1 / math.Sqrt(float64(dim))
	for _, p := range []*Param{s.Wq, s.Wk, s.Wv} {
		for i := range p.Data {
			p.Data[i] = rng.NormFloat64() * std
		}
	}
	return s
}

// Name implements Layer.
func (s *SelfAttention) Name() string { return s.name }

// InDim returns T*D.
func (s *SelfAttention) InDim() int { return s.T * s.D }

// Params implements Layer.
func (s *SelfAttention) Params() []*Param { return []*Param{s.Wq, s.Wk, s.Wv} }

// weights as matrices (shared storage).
func (s *SelfAttention) wq() *tensor.Matrix { return tensor.NewMatrixFrom(s.D, s.D, s.Wq.Data) }
func (s *SelfAttention) wk() *tensor.Matrix { return tensor.NewMatrixFrom(s.D, s.D, s.Wk.Data) }
func (s *SelfAttention) wv() *tensor.Matrix { return tensor.NewMatrixFrom(s.D, s.D, s.Wv.Data) }

// Lipschitz implements Lipschitzer with the default token-norm bound
// R = sqrt(D) (inputs normalized to [-1, 1]).
func (s *SelfAttention) Lipschitz() float64 {
	return s.LocalLipschitz(math.Sqrt(float64(s.D)))
}

// LocalLipschitz evaluates the local bound for token norms <= r.
func (s *SelfAttention) LocalLipschitz(r float64) float64 {
	sq := tensor.SpectralNorm(s.wq(), 100)
	sk := tensor.SpectralNorm(s.wk(), 100)
	sv := tensor.SpectralNorm(s.wv(), 100)
	sqrtT := math.Sqrt(float64(s.T))
	return sqrtT * sv * (1 + sq*sk*r*r*(sqrtT+1)/(2*math.Sqrt(float64(s.D))))
}

// sampleView reshapes sample n of a (T*D x batch) matrix to T x D.
func (s *SelfAttention) sampleView(x *tensor.Matrix, n int) *tensor.Matrix {
	out := tensor.NewMatrix(s.T, s.D)
	for t := 0; t < s.T; t++ {
		for d := 0; d < s.D; d++ {
			out.Set(t, d, x.At(t*s.D+d, n))
		}
	}
	return out
}

// Forward implements Layer.
func (s *SelfAttention) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Rows != s.InDim() {
		panic(fmt.Sprintf("nn: %s input rows %d != %d", s.name, x.Rows, s.InDim()))
	}
	batch := x.Cols
	//lint:ignore hotalloc legacy per-call layer path; the compiled engine (infer.go) is the zero-alloc fast path
	out := tensor.NewMatrix(s.InDim(), batch)
	if train {
		s.inX = x.Clone()
		s.q = make([]*tensor.Matrix, batch)
		s.k = make([]*tensor.Matrix, batch)
		s.v = make([]*tensor.Matrix, batch)
		s.a = make([]*tensor.Matrix, batch)
	}
	invSqrtD := 1 / math.Sqrt(float64(s.D))
	for n := 0; n < batch; n++ {
		xs := s.sampleView(x, n)
		q := xs.Mul(s.wq())
		k := xs.Mul(s.wk())
		v := xs.Mul(s.wv())
		scores := q.Mul(k.T()).Scale(invSqrtD)
		a := Softmax(scores.T()).T() // Softmax is column-wise; rows here
		y := a.Mul(v)
		if train {
			s.q[n], s.k[n], s.v[n], s.a[n] = q, k, v, a
		}
		for t := 0; t < s.T; t++ {
			for d := 0; d < s.D; d++ {
				out.Set(t*s.D+d, n, y.At(t, d))
			}
		}
	}
	return out
}

// Backward implements Layer.
func (s *SelfAttention) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if s.inX == nil {
		panic("nn: attention Backward before Forward(train)")
	}
	batch := grad.Cols
	out := tensor.NewMatrix(s.InDim(), batch)
	invSqrtD := 1 / math.Sqrt(float64(s.D))
	dWq := tensor.NewMatrix(s.D, s.D)
	dWk := tensor.NewMatrix(s.D, s.D)
	dWv := tensor.NewMatrix(s.D, s.D)
	for n := 0; n < batch; n++ {
		xs := s.sampleView(s.inX, n)
		dy := s.sampleView(grad, n)
		a, q, k, v := s.a[n], s.q[n], s.k[n], s.v[n]

		dv := a.T().Mul(dy)
		da := dy.Mul(v.T())
		// Softmax backward per row: ds_i = (diag(a_i) - a_i a_i^T) da_i.
		ds := tensor.NewMatrix(s.T, s.T)
		for i := 0; i < s.T; i++ {
			var dot float64
			for j := 0; j < s.T; j++ {
				dot += a.At(i, j) * da.At(i, j)
			}
			for j := 0; j < s.T; j++ {
				ds.Set(i, j, a.At(i, j)*(da.At(i, j)-dot))
			}
		}
		ds.Scale(invSqrtD)
		dq := ds.Mul(k)
		dk := ds.T().Mul(q)

		dWq.AddScaled(1, xs.T().Mul(dq))
		dWk.AddScaled(1, xs.T().Mul(dk))
		dWv.AddScaled(1, xs.T().Mul(dv))

		dx := dq.Mul(s.wq().T())
		dx.AddScaled(1, dk.Mul(s.wk().T()))
		dx.AddScaled(1, dv.Mul(s.wv().T()))
		for t := 0; t < s.T; t++ {
			for d := 0; d < s.D; d++ {
				out.Set(t*s.D+d, n, dx.At(t, d))
			}
		}
	}
	for i := range dWq.Data {
		s.Wq.Grad[i] += dWq.Data[i]
		s.Wk.Grad[i] += dWk.Data[i]
		s.Wv.Grad[i] += dWv.Data[i]
	}
	return out
}
