package nn

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden-file regression for compiled op programs: the engine compiler's
// decisions — op selection, arena slot assignment, activation fusion —
// determine exactly which float schedule runs in production, so a silent
// change to any of them must be loud. Each golden pins the Program()
// dump for a fixed golden spec; regenerate deliberately with
//
//	go test ./internal/nn -run TestGoldenEnginePrograms -update
//
// and review the diff like any other code change (a fusion that
// disappears, a slot that moves, an op that changes kind).
var updatePrograms = flag.Bool("update", false, "rewrite golden program dumps with current compiler output")

// goldenProgramSpecs covers the compiler's distinct regimes: a PSN MLP
// (dense + fused act), a conv/residual net (direct conv, shortcut
// compilation, fused residual act), a BN/pool/round stack (fusion
// barriers: round and maxpool are not fusable), and the attention block.
func goldenProgramSpecs() []*Spec {
	all := goldenInferSpecs()
	want := map[string]bool{"mlp-psn": true, "resnet": true, "bn-pool-round": true, "attn": true}
	out := make([]*Spec, 0, len(want))
	for _, s := range all {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

func TestGoldenEnginePrograms(t *testing.T) {
	for _, spec := range goldenProgramSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			net := buildGolden(t, spec, 7)
			eng, err := CompileInference(net, 8)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			got := strings.Join(eng.Program(), "\n") + "\n"
			path := filepath.Join("testdata", "golden", spec.Name+".program")
			if *updatePrograms {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("compiled program drifted from golden %s.\ngot:\n%s\nwant:\n%s\nIf intentional, regenerate with -update and review the diff.",
					spec.Name, got, want)
			}

			// Every lane of a sharded engine compiles the identical program.
			sharded, err := CompileInferenceSharded(net, 8, 3)
			if err != nil {
				t.Fatalf("compile sharded: %v", err)
			}
			if sgot := strings.Join(sharded.Program(), "\n") + "\n"; sgot != got {
				t.Errorf("sharded engine compiled a different program:\n%s\nvs unsharded:\n%s", sgot, got)
			}
		})
	}
}
