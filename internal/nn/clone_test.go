package nn

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/scidata/errprop/internal/tensor"
)

func cloneTestNet(t *testing.T, psn bool) *Network {
	t.Helper()
	spec := MLPSpec("clonetest", []int{9, 50, 50, 9}, ActTanh, psn)
	net, err := spec.Build(42)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestParamClone(t *testing.T) {
	p := NewParam("w", 4)
	for i := range p.Data {
		p.Data[i] = float64(i) + 0.5
		p.Grad[i] = float64(i) - 0.5
	}
	q := p.Clone()
	if q.Name != p.Name || len(q.Data) != len(p.Data) || len(q.Grad) != len(p.Grad) {
		t.Fatalf("clone shape mismatch: %+v vs %+v", q, p)
	}
	q.Data[0] += 1
	q.Grad[0] += 1
	if math.Abs(p.Data[0]-0.5) > 0 || math.Abs(p.Grad[0]+0.5) > 0 {
		t.Fatalf("mutating clone leaked into original: %v %v", p.Data[0], p.Grad[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	for _, psn := range []bool{false, true} {
		net := cloneTestNet(t, psn)
		x := make(tensor.Vector, 9)
		for i := range x {
			x[i] = 0.1 * float64(i+1)
		}
		want := net.ForwardVec(x)

		c, err := net.Clone()
		if err != nil {
			t.Fatalf("psn=%v: %v", psn, err)
		}
		got := c.ForwardVec(x)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 0 {
				t.Fatalf("psn=%v: clone output[%d]=%v != original %v (must be bit-identical)", psn, i, got[i], want[i])
			}
		}

		// Mutating the clone's parameters must not leak into the original.
		for _, p := range c.Params() {
			for i := range p.Data {
				p.Data[i] += 100
			}
		}
		c.RefreshSigmas()
		after := net.ForwardVec(x)
		for i := range want {
			if math.Abs(after[i]-want[i]) > 0 {
				t.Fatalf("psn=%v: mutating clone changed original output[%d]: %v vs %v", psn, i, after[i], want[i])
			}
		}
	}
}

func TestCloneWithoutSpec(t *testing.T) {
	net := cloneTestNet(t, false)
	bare := &Network{InputDim: net.InputDim, Layers: net.Layers} // no Spec
	if _, err := bare.Clone(); err == nil {
		t.Fatal("Clone accepted a network without a Spec")
	}
}

// TestConcurrentForwardOnClones exercises the contract Clone exists for:
// one replica per goroutine is race-free (run under -race), and every
// replica computes exactly the original's function. A single shared
// *Network would race here — Forward lazily touches per-layer spectral
// state and, with train=true, caches activations for Backward.
func TestConcurrentForwardOnClones(t *testing.T) {
	net := cloneTestNet(t, true)
	x := make(tensor.Vector, 9)
	for i := range x {
		x[i] = 0.05 * float64(i)
	}
	want := net.ForwardVec(x)

	const replicas = 8
	var wg sync.WaitGroup
	errs := make(chan error, replicas)
	for r := 0; r < replicas; r++ {
		c, err := net.Clone()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c *Network) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				got := c.ForwardVec(x)
				for i := range want {
					if math.Abs(got[i]-want[i]) > 0 {
						errs <- fmt.Errorf("replica output[%d]=%v diverged from %v", i, got[i], want[i])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
