package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/tensor"
)

func TestAttentionForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	att := NewSelfAttention("a", 4, 6, rng)
	x := randBatch(rng, 24, 3)
	out := att.Forward(x, false)
	if out.Rows != 24 || out.Cols != 3 {
		t.Fatalf("attention output %dx%d", out.Rows, out.Cols)
	}
}

func TestAttentionRowsAreConvexCombinations(t *testing.T) {
	// Each output token is a convex combination of value vectors, so with
	// Wv = I and constant tokens the output equals the input.
	rng := rand.New(rand.NewSource(2))
	att := NewSelfAttention("a", 3, 4, rng)
	// Identity Wv, arbitrary Wq/Wk.
	for i := range att.Wv.Data {
		att.Wv.Data[i] = 0
	}
	for d := 0; d < 4; d++ {
		att.Wv.Data[d*4+d] = 1
	}
	x := tensor.NewMatrix(12, 1)
	for tok := 0; tok < 3; tok++ {
		for d := 0; d < 4; d++ {
			x.Set(tok*4+d, 0, float64(d)*0.1) // same vector every token
		}
	}
	out := att.Forward(x, false)
	for i := range x.Data {
		if math.Abs(out.Data[i]-x.Data[i]) > 1e-12 {
			t.Fatalf("constant-token attention should be identity: %v vs %v", out.Data[i], x.Data[i])
		}
	}
}

func TestAttentionGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := &Spec{Name: "g", InputDim: 3 * 4, Layers: []LayerSpec{
		{Type: "attention", Name: "att", In: 3, Out: 4},
		{Type: "dense", Name: "fc", In: 12, Out: 2},
	}}
	net, err := spec.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	checkGrads(t, net, randBatch(rng, 12, 3), randBatch(rng, 2, 3), 1e-4)
}

func TestAttentionLocalLipschitzHolds(t *testing.T) {
	// Empirical validation of the local bound: for pairs of inputs with
	// token norms <= R, the output difference never exceeds L * ||dX||.
	rng := rand.New(rand.NewSource(4))
	att := NewSelfAttention("a", 4, 5, rng)
	r := math.Sqrt(5.0)
	lip := att.LocalLipschitz(r)
	if lip <= 0 {
		t.Fatal("degenerate local Lipschitz")
	}
	var worstRatio float64
	for trial := 0; trial < 500; trial++ {
		x := tensor.NewMatrix(20, 1)
		for i := range x.Data {
			x.Data[i] = rng.Float64()*2 - 1 // token norms <= sqrt(5) = R
		}
		xp := x.Clone()
		eps := math.Exp2(-float64(rng.Intn(12) + 2))
		for i := range xp.Data {
			xp.Data[i] += (rng.Float64()*2 - 1) * eps
			if xp.Data[i] > 1 {
				xp.Data[i] = 1
			}
			if xp.Data[i] < -1 {
				xp.Data[i] = -1
			}
		}
		dx := tensor.Vector(x.Data).Sub(tensor.Vector(xp.Data)).Norm2()
		if dx == 0 {
			continue
		}
		y := att.Forward(x, false)
		yp := att.Forward(xp, false)
		dy := tensor.Vector(y.Data).Sub(tensor.Vector(yp.Data)).Norm2()
		if ratio := dy / dx; ratio > worstRatio {
			worstRatio = ratio
		}
	}
	if worstRatio > lip {
		t.Fatalf("local Lipschitz bound %v violated: observed ratio %v", lip, worstRatio)
	}
	// And the bound should not be absurdly loose (< 1e4x of observed).
	if worstRatio > 0 && lip/worstRatio > 1e4 {
		t.Fatalf("bound %v is %.0fx the observed worst ratio %v", lip, lip/worstRatio, worstRatio)
	}
}

func TestAttentionSaveLoad(t *testing.T) {
	spec := &Spec{Name: "m", InputDim: 8, Layers: []LayerSpec{
		{Type: "attention", Name: "att", In: 2, Out: 4},
	}}
	net, err := spec.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := randBatch(rand.New(rand.NewSource(6)), 8, 2)
	a := net.Forward(x, false)
	b := loaded.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("attention roundtrip diverged")
		}
	}
}
