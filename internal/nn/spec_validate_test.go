package nn

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/scidata/errprop/internal/integrity"
)

func TestValidateAcceptsBuilderSpecs(t *testing.T) {
	specs := map[string]*Spec{
		"mlp":    MLPSpec("m", []int{9, 50, 50, 9}, ActTanh, true),
		"resnet": ResNetSpec("r", 3, 8, 8, 10, []int{1, 1}, []int{4, 8}, ActReLU, false),
		"unet":   UNetSpec("u", 2, 8, 8, 2, 4, ActReLU, false),
	}
	for name, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: builder spec rejected: %v", name, err)
		}
	}
}

func TestValidateChainErrors(t *testing.T) {
	cases := []struct {
		name    string
		spec    Spec
		wantSub string // substring the position-annotated error must carry
	}{
		{
			name: "dense chain mismatch",
			spec: Spec{InputDim: 4, Layers: []LayerSpec{
				{Type: "dense", Name: "a", In: 4, Out: 8},
				{Type: "dense", Name: "b", In: 9, Out: 2},
			}},
			wantSub: `layers[1] (dense "b"): input dim 9 does not chain from previous output 8`,
		},
		{
			name: "input dim mismatch",
			spec: Spec{InputDim: 3, Layers: []LayerSpec{
				{Type: "dense", Name: "a", In: 4, Out: 8},
			}},
			wantSub: "does not chain from previous output 3",
		},
		{
			name: "conv kernel exceeds input",
			spec: Spec{Layers: []LayerSpec{
				{Type: "conv", Name: "c", C: 1, H: 2, W: 2, OutC: 1, K: 5, Stride: 1},
			}},
			wantSub: "does not fit 2x2 input",
		},
		{
			name: "conv negative pad",
			spec: Spec{Layers: []LayerSpec{
				{Type: "conv", Name: "c", C: 1, H: 4, W: 4, OutC: 1, K: 3, Stride: 1, Pad: -1},
			}},
			wantSub: "negative padding",
		},
		{
			name: "conv feeding dense mismatch",
			spec: Spec{Layers: []LayerSpec{
				{Type: "conv", Name: "c", C: 1, H: 4, W: 4, OutC: 2, K: 3, Stride: 1, Pad: 1},
				{Type: "dense", Name: "d", In: 10, Out: 2},
			}},
			wantSub: `layers[1] (dense "d"): input dim 10 does not chain from previous output 32`,
		},
		{
			name: "pool window too large",
			spec: Spec{Layers: []LayerSpec{
				{Type: "maxpool", Name: "p", C: 1, H: 2, W: 2, K: 4},
			}},
			wantSub: "pool window 4 exceeds 2x2 input",
		},
		{
			name: "residual halves disagree",
			spec: Spec{InputDim: 16, Layers: []LayerSpec{
				{Type: "residual", Name: "res", Branch: []LayerSpec{
					{Type: "dense", Name: "fb", In: 16, Out: 8},
				}},
			}},
			wantSub: `(residual "res"): branch output 8 != shortcut output 16`,
		},
		{
			name: "residual nested position",
			spec: Spec{InputDim: 16, Layers: []LayerSpec{
				{Type: "residual", Name: "res", Branch: []LayerSpec{
					{Type: "dense", Name: "f0", In: 16, Out: 16},
					{Type: "dense", Name: "f1", In: 4, Out: 16},
				}},
			}},
			wantSub: `layers[0].branch[1] (dense "f1")`,
		},
		{
			name: "skipconcat branch half mismatch",
			spec: Spec{InputDim: 16, Layers: []LayerSpec{
				{Type: "skipconcat", Name: "sk", C: 1, OutC: 2, H: 4, W: 4, Branch: []LayerSpec{
					{Type: "conv", Name: "b0", C: 1, H: 4, W: 4, OutC: 3, K: 3, Stride: 1, Pad: 1},
				}},
			}},
			wantSub: "branch output 48 != declared branch half 32",
		},
		{
			name: "attention chain",
			spec: Spec{InputDim: 10, Layers: []LayerSpec{
				{Type: "attention", Name: "att", In: 3, Out: 4},
			}},
			wantSub: "input dim 12 does not chain from previous output 10",
		},
		{
			name: "round INT8",
			spec: Spec{Layers: []LayerSpec{
				{Type: "round", Name: "r", Fmt: "int8"},
			}},
			wantSub: "INT8 activation rounding",
		},
		{
			name:    "negative input dim",
			spec:    Spec{InputDim: -1},
			wantSub: "negative input dim",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q missing %q", err, tc.wantSub)
			}
			if _, err := tc.spec.Build(0); err == nil {
				t.Fatal("Build accepted a spec Validate rejects")
			}
		})
	}
}

func TestValidateUnknownInputAdopted(t *testing.T) {
	// No InputDim and a leading activation: the chain starts unknown
	// and is adopted at the first geometric layer.
	s := Spec{Layers: []LayerSpec{
		{Type: "act", Act: ActTanh},
		{Type: "dense", Name: "d", In: 6, Out: 3},
		{Type: "act", Act: ActReLU},
		{Type: "dense", Name: "e", In: 3, Out: 1},
	}}
	if err := s.Validate(); err != nil {
		t.Fatalf("unknown-start spec rejected: %v", err)
	}
}

func TestLoadValidates(t *testing.T) {
	// A hand-corrupted spec must be rejected at load time with a
	// position-annotated error rather than building a broken network.
	spec := MLPSpec("lv", []int{3, 4, 2}, ActTanh, false)
	net, err := spec.Build(5)
	if err != nil {
		t.Fatal(err)
	}

	// On the checksummed v3 framing the edit is caught by the CRC before
	// the spec is even parsed.
	var v3 strings.Builder
	if err := net.Save(&v3); err != nil {
		t.Fatal(err)
	}
	raw := strings.Replace(v3.String(), `"in":4`, `"in":7`, 1)
	if raw == v3.String() {
		t.Fatal("corruption did not apply")
	}
	if _, err := Load(strings.NewReader(raw)); !errors.Is(err, integrity.ErrCorrupt) {
		t.Fatalf("v3 Load of corrupt spec: got %v, want ErrCorrupt", err)
	}

	// The legacy v2 framing has no checksum, so the corrupted spec JSON
	// parses — chain validation must still reject it with a
	// position-annotated error rather than building a broken network.
	var body bytes.Buffer
	if err := net.saveBody(&body); err != nil {
		t.Fatal(err)
	}
	legacy := modelMagic + strings.Replace(body.String(), `"in":4`, `"in":7`, 1)
	if legacy == modelMagic+body.String() {
		t.Fatal("corruption did not apply")
	}
	if _, err := Load(strings.NewReader(legacy)); err == nil || !strings.Contains(err.Error(), "does not chain") {
		t.Fatalf("legacy Load accepted corrupt spec (err=%v)", err)
	}
}
