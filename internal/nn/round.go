package nn

import (
	"fmt"

	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/tensor"
)

// RoundLayer rounds every activation value to a floating-point format —
// the activation-quantization extension the paper sketches ("the error
// introduced by activation quantization can be addressed similarly to
// compression error by applying Equation (5), while excluding all layers
// preceding the affected activation"). It is an inference-time layer:
// Backward passes gradients through unchanged (straight-through).
//
// Only float formats are supported; INT8 activations would need
// data-dependent calibration, which matches the paper's weight-only
// scope.
type RoundLayer struct {
	Format numfmt.Format
	name   string
}

// NewRoundLayer builds an activation-rounding layer.
func NewRoundLayer(name string, f numfmt.Format) (*RoundLayer, error) {
	if f == numfmt.INT8 {
		return nil, fmt.Errorf("nn: INT8 activation rounding needs calibration; unsupported")
	}
	return &RoundLayer{Format: f, name: name}, nil
}

// Name implements Layer.
func (r *RoundLayer) Name() string { return r.name }

// Forward implements Layer.
func (r *RoundLayer) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	//lint:ignore hotalloc legacy per-call layer path; the compiled engine (infer.go) is the zero-alloc fast path
	out := tensor.NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = r.Format.Round(v)
	}
	return out
}

// Backward implements Layer (straight-through estimator).
func (r *RoundLayer) Backward(grad *tensor.Matrix) *tensor.Matrix { return grad }

// Params implements Layer.
func (r *RoundLayer) Params() []*Param { return nil }

// Lipschitz implements Lipschitzer: rounding is not a contraction, but
// |round(a)-round(b)| <= |a-b| + eps(|a|+|b|); the error-flow analysis
// treats the deterministic part as identity (C = 1) and accounts for the
// eps term through the activation-quantization channel.
func (r *RoundLayer) Lipschitz() float64 { return 1 }

// RelEps returns the relative rounding error bound of the format:
// half a unit in the last place, 2^-(mantissa+1).
func (r *RoundLayer) RelEps() float64 { return relEps(r.Format) }

func relEps(f numfmt.Format) float64 {
	m := f.MantissaBits()
	return 1 / float64(uint64(1)<<uint(m+1))
}
