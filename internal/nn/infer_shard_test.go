package nn

import (
	"math/rand"
	"testing"
)

// Sharded execution must be invisible in the numbers: for any shard
// count, Engine.Forward output is exactly == the legacy Network.Forward
// and the unsharded engine. The matrix below crosses shard counts
// {1, 2, 3, 8} with every golden architecture and batch widths chosen to
// hit the shard planner's edges — batch < shards (idle lanes), batch not
// divisible by shards (uneven fixed boundaries), batch == shards
// (1-column lanes), and batch > maxBatch (arena growth under sharding).

var shardCounts = []int{1, 2, 3, 8}

func TestEngineShardEquivalence(t *testing.T) {
	for _, spec := range goldenInferSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			net := buildGolden(t, spec, 7)
			const maxBatch = 8
			base, err := CompileInference(net, maxBatch)
			if err != nil {
				t.Fatalf("compile unsharded: %v", err)
			}
			engines := make(map[int]*Engine, len(shardCounts))
			for _, sc := range shardCounts {
				eng, err := CompileInferenceSharded(net, maxBatch, sc)
				if err != nil {
					t.Fatalf("compile shards=%d: %v", sc, err)
				}
				engines[sc] = eng
			}
			rng := rand.New(rand.NewSource(23))
			for _, batch := range []int{1, 2, 3, 5, 7, 8, 11} {
				for rep := 0; rep < 2; rep++ {
					x := randInferBatch(rng, spec.InputDim, batch)
					want := net.Forward(x, false)
					ref := base.Forward(x)
					if !bitEqual(ref.Data, want.Data) {
						t.Fatalf("batch %d: unsharded engine differs from legacy Forward", batch)
					}
					for _, sc := range shardCounts {
						got := engines[sc].Forward(x)
						if got.Rows != want.Rows || got.Cols != want.Cols {
							t.Fatalf("shards=%d batch=%d: shape %dx%d, want %dx%d",
								sc, batch, got.Rows, got.Cols, want.Rows, want.Cols)
						}
						if !bitEqual(got.Data, want.Data) {
							t.Fatalf("shards=%d batch=%d rep=%d: sharded output not bit-identical to legacy Forward",
								sc, batch, rep)
						}
					}
				}
			}
		})
	}
}

// TestEngineShardedZeroAllocs extends the steady-state allocation
// guarantee to sharded execution: per-lane arenas, the join buffer, and
// the stored spawn closures are all compile-time objects, so a warmed
// sharded Forward must not touch the heap — goroutine hand-off included.
func TestEngineShardedZeroAllocs(t *testing.T) {
	specs := []*Spec{
		MLPSpec("mlp-psn", []int{9, 16, 12, 9}, ActTanh, true),
		ResNetSpec("resnet", 1, 8, 8, 4, []int{1, 1}, []int{4, 8}, ActReLU, true),
		UNetSpec("unet", 2, 8, 8, 3, 4, ActReLU, true),
	}
	for _, spec := range specs {
		spec := spec
		for _, sc := range []int{2, 3} {
			t.Run(spec.Name, func(t *testing.T) {
				net := buildGolden(t, spec, 7)
				eng, err := CompileInferenceSharded(net, 8, sc)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				rng := rand.New(rand.NewSource(13))
				x := randInferBatch(rng, spec.InputDim, 8)
				eng.Forward(x) // warm arenas and the join buffer
				if allocs := testing.AllocsPerRun(30, func() { eng.Forward(x) }); allocs != 0 {
					t.Fatalf("shards=%d steady-state Forward: %v allocs/op, want 0", sc, allocs)
				}
			})
		}
	}
}

// TestEngineShardClamp pins the planner's edge rules: shard counts above
// maxBatch clamp (a lane never owns zero columns at full width), and a
// batch smaller than the lane count leaves the extra lanes idle rather
// than splitting below one column.
func TestEngineShardClamp(t *testing.T) {
	spec := MLPSpec("clamp", []int{5, 8, 3}, ActTanh, false)
	net := buildGolden(t, spec, 3)
	eng, err := CompileInferenceSharded(net, 4, 64)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if eng.Shards() != 4 {
		t.Fatalf("Shards() = %d, want clamp to maxBatch 4", eng.Shards())
	}
	rng := rand.New(rand.NewSource(29))
	for _, batch := range []int{1, 2, 3, 4, 9} {
		x := randInferBatch(rng, 5, batch)
		want := net.Forward(x, false)
		if got := eng.Forward(x); !bitEqual(got.Data, want.Data) {
			t.Fatalf("batch %d: clamped sharded output differs", batch)
		}
	}
	if _, err := CompileInferenceSharded(net, 4, 0); err == nil {
		t.Fatal("expected error for shards=0")
	}
	if _, err := CompileInferenceSharded(net, 4, -1); err == nil {
		t.Fatal("expected error for negative shards")
	}
}

// TestEngineShardInputNotAliased guards the lane input hazard: a
// single-column call binds the caller's matrix as the lane-0 input slot,
// and a subsequent sharded call must not write shard slices through that
// stale binding into caller-owned memory.
func TestEngineShardInputNotAliased(t *testing.T) {
	spec := MLPSpec("alias", []int{6, 9, 4}, ActTanh, false)
	net := buildGolden(t, spec, 11)
	eng, err := CompileInferenceSharded(net, 8, 4)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rng := rand.New(rand.NewSource(31))
	x1 := randInferBatch(rng, 6, 1) // routes through the 1-lane fast path
	snap := append([]float64(nil), x1.Data...)
	eng.Forward(x1)
	x8 := randInferBatch(rng, 6, 8) // sharded call after the fast path
	want := net.Forward(x8, false)
	if got := eng.Forward(x8); !bitEqual(got.Data, want.Data) {
		t.Fatal("sharded call after single-column call lost bit-identity")
	}
	if !bitEqual(x1.Data, snap) {
		t.Fatal("sharded call wrote through a stale input binding into caller memory")
	}
}
