package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/tensor"
)

func TestUpsampleForward(t *testing.T) {
	u := NewUpsample2D("up", 1, 2, 2)
	x := tensor.NewMatrixFrom(4, 1, []float64{1, 2, 3, 4})
	out := u.Forward(x, false)
	want := []float64{
		1, 1, 2, 2,
		1, 1, 2, 2,
		3, 3, 4, 4,
		3, 3, 4, 4,
	}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("upsample out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestUpsampleLipschitzExact(t *testing.T) {
	// Replication by 4 scales the L2 norm by exactly 2 for every input.
	rng := rand.New(rand.NewSource(1))
	u := NewUpsample2D("up", 3, 4, 4)
	for trial := 0; trial < 50; trial++ {
		x := randBatch(rng, 48, 1)
		out := u.Forward(x, false)
		rin := tensor.Vector(x.Data).Norm2()
		rout := tensor.Vector(out.Data).Norm2()
		if math.Abs(rout-2*rin) > 1e-12*rout {
			t.Fatalf("upsample norm ratio %v, want 2", rout/rin)
		}
	}
	if u.Lipschitz() != 2 {
		t.Fatal("Lipschitz() should be 2")
	}
}

func TestUpsampleGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spec := &Spec{Name: "g", InputDim: 2 * 2 * 2, Layers: []LayerSpec{
		{Type: "dense", Name: "d", In: 8, Out: 8},
		{Type: "upsample", Name: "up", C: 2, H: 2, W: 2},
	}}
	net, err := spec.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	checkGrads(t, net, randBatch(rng, 8, 3), randBatch(rng, 32, 3), 1e-5)
}

func TestSkipConcatForwardShapes(t *testing.T) {
	spec := UNetSpec("u", 2, 8, 8, 3, 4, ActReLU, false)
	net, err := spec.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	x := randBatch(rand.New(rand.NewSource(3)), 2*8*8, 2)
	out := net.Forward(x, false)
	if out.Rows != 3*8*8 || out.Cols != 2 {
		t.Fatalf("unet output %dx%d, want %dx2", out.Rows, out.Cols, 3*8*8)
	}
}

func TestSkipConcatGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	spec := &Spec{Name: "g", InputDim: 2 * 4 * 4, Layers: []LayerSpec{
		{Type: "skipconcat", Name: "sc", C: 2, OutC: 2, H: 4, W: 4, Branch: []LayerSpec{
			{Type: "conv", Name: "b1", C: 2, H: 4, W: 4, OutC: 2, K: 3, Stride: 1, Pad: 1},
			{Type: "act", Act: ActTanh},
		}},
		{Type: "conv", Name: "out", C: 4, H: 4, W: 4, OutC: 1, K: 1, Stride: 1, Pad: 0},
	}}
	net, err := spec.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	checkGrads(t, net, randBatch(rng, 32, 3), randBatch(rng, 16, 3), 1e-5)
}

func TestUNetTrains(t *testing.T) {
	// Field-to-field regression: learn a smoothing operator.
	rng := rand.New(rand.NewSource(5))
	spec := UNetSpec("u", 1, 8, 8, 1, 4, ActTanh, true)
	net, err := spec.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	n := 32
	x := tensor.NewMatrix(64, n)
	y := tensor.NewMatrix(64, n)
	for c := 0; c < n; c++ {
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				v := math.Sin(float64(i)/2+rng.Float64()*0.1) * math.Cos(float64(j)/2)
				x.Set(i*8+j, c, v)
				y.Set(i*8+j, c, 0.5*v)
			}
		}
	}
	opt := NewAdam(5e-3)
	var loss float64
	for epoch := 0; epoch < 800; epoch++ {
		net.ZeroGrad()
		out := net.Forward(x, true)
		var grad *tensor.Matrix
		loss, grad = MSELoss(out, y)
		net.AddRegGrad(1e-4)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	if loss > 2e-3 {
		t.Fatalf("U-Net did not converge: loss %v", loss)
	}
}

func TestSkipConcatMismatchedBranchPanics(t *testing.T) {
	sc := NewSkipConcat("sc", 2, 3, 4, 4, []Layer{MustActivation(ActIdentity)})
	defer func() {
		if recover() == nil {
			t.Fatal("branch channel mismatch should panic")
		}
	}()
	sc.Forward(tensor.NewMatrix(32, 1), false)
}
