package nn

import (
	"fmt"
	"math"

	"github.com/scidata/errprop/internal/tensor"
)

// Upsample2D doubles spatial resolution by nearest-neighbour replication
// (scale fixed at 2, the standard U-Net decoder step). Each input value
// feeds a 2x2 output block, so the operator's L2 norm is exactly 2.
type Upsample2D struct {
	C, H, W int
	inBatch int
	name    string
}

// NewUpsample2D builds an upsampling layer for (c, h, w) inputs.
func NewUpsample2D(name string, c, h, w int) *Upsample2D {
	return &Upsample2D{C: c, H: h, W: w, name: name}
}

// Name implements Layer.
func (u *Upsample2D) Name() string { return u.name }

// InDim returns the flattened input feature count.
func (u *Upsample2D) InDim() int { return u.C * u.H * u.W }

// OutDim returns the flattened output feature count.
func (u *Upsample2D) OutDim() int { return u.C * u.H * u.W * 4 }

// Lipschitz implements Lipschitzer: replicating each value 4x scales the
// L2 norm by sqrt(4) = 2.
func (u *Upsample2D) Lipschitz() float64 { return 2 }

// Forward implements Layer.
func (u *Upsample2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Rows != u.InDim() {
		panic(fmt.Sprintf("nn: %s input rows %d != %d", u.name, x.Rows, u.InDim()))
	}
	batch := x.Cols
	if train {
		u.inBatch = batch
	}
	oh, ow := 2*u.H, 2*u.W
	//lint:ignore hotalloc legacy per-call layer path; the compiled engine (infer.go) is the zero-alloc fast path
	out := tensor.NewMatrix(u.C*oh*ow, batch)
	for c := 0; c < u.C; c++ {
		for y := 0; y < u.H; y++ {
			for xx := 0; xx < u.W; xx++ {
				src := (c*u.H+y)*u.W + xx
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						dst := (c*oh+2*y+dy)*ow + 2*xx + dx
						copy(out.Data[dst*batch:(dst+1)*batch], x.Data[src*batch:(src+1)*batch])
					}
				}
			}
		}
	}
	return out
}

// Backward implements Layer: gradients of the four copies sum.
func (u *Upsample2D) Backward(grad *tensor.Matrix) *tensor.Matrix {
	batch := u.inBatch
	oh, ow := 2*u.H, 2*u.W
	out := tensor.NewMatrix(u.InDim(), batch)
	for c := 0; c < u.C; c++ {
		for y := 0; y < u.H; y++ {
			for xx := 0; xx < u.W; xx++ {
				dst := (c*u.H+y)*u.W + xx
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						src := (c*oh+2*y+dy)*ow + 2*xx + dx
						for n := 0; n < batch; n++ {
							out.Data[dst*batch+n] += grad.Data[src*batch+n]
						}
					}
				}
			}
		}
	}
	return out
}

// Params implements Layer.
func (u *Upsample2D) Params() []*Param { return nil }

// SkipConcat is the U-Net skip connection: y = concat(x, Branch(x))
// along the channel axis. Both x and the branch output must share the
// same spatial extent; the branch typically downsamples, processes and
// upsamples back.
//
// Error flow (see core): errors in the two halves combine in quadrature,
// ||dy||^2 = ||dx||^2 + ||dBranch||^2, giving the Lipschitz rule
// sqrt(1 + L_branch^2) — the "corresponding error-flow equation" the
// paper's future-work section asks for U-Net skips.
type SkipConcat struct {
	// XC / BC are the channel counts of the identity and branch halves;
	// H, W their shared spatial extent.
	XC, BC, H, W int
	Branch       []Layer
	name         string
}

// NewSkipConcat builds a skip-concatenation block.
func NewSkipConcat(name string, xc, bc, h, w int, branch []Layer) *SkipConcat {
	return &SkipConcat{XC: xc, BC: bc, H: h, W: w, Branch: branch, name: name}
}

// Name implements Layer.
func (s *SkipConcat) Name() string { return s.name }

// InDim returns the flattened input feature count.
func (s *SkipConcat) InDim() int { return s.XC * s.H * s.W }

// OutDim returns the flattened output feature count.
func (s *SkipConcat) OutDim() int { return (s.XC + s.BC) * s.H * s.W }

// Forward implements Layer.
func (s *SkipConcat) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Rows != s.InDim() {
		panic(fmt.Sprintf("nn: %s input rows %d != %d", s.name, x.Rows, s.InDim()))
	}
	b := x
	for _, l := range s.Branch {
		b = l.Forward(b, train)
	}
	if b.Rows != s.BC*s.H*s.W {
		panic(fmt.Sprintf("nn: %s branch produced %d rows, want %d", s.name, b.Rows, s.BC*s.H*s.W))
	}
	batch := x.Cols
	//lint:ignore hotalloc legacy per-call layer path; the compiled engine (infer.go) is the zero-alloc fast path
	out := tensor.NewMatrix(s.OutDim(), batch)
	copy(out.Data[:x.Rows*batch], x.Data)
	copy(out.Data[x.Rows*batch:], b.Data)
	return out
}

// Backward implements Layer.
func (s *SkipConcat) Backward(grad *tensor.Matrix) *tensor.Matrix {
	batch := grad.Cols
	xRows := s.InDim()
	gx := tensor.NewMatrixFrom(xRows, batch, append([]float64(nil), grad.Data[:xRows*batch]...))
	gb := tensor.NewMatrixFrom(s.BC*s.H*s.W, batch, append([]float64(nil), grad.Data[xRows*batch:]...))
	for i := len(s.Branch) - 1; i >= 0; i-- {
		gb = s.Branch[i].Backward(gb)
	}
	return gx.Add(gb)
}

// Params implements Layer.
func (s *SkipConcat) Params() []*Param {
	var out []*Param
	for _, l := range s.Branch {
		out = append(out, l.Params()...)
	}
	return out
}

// AddRegGrad implements Regularized by delegating to branch members.
func (s *SkipConcat) AddRegGrad(lambda float64) float64 {
	var sum float64
	for _, l := range s.Branch {
		if reg, ok := l.(Regularized); ok {
			sum += reg.AddRegGrad(lambda)
		}
	}
	return sum
}

// UNetSpec builds a compact U-Net for (inC, h, w) inputs and outC output
// channels at full resolution: an encoder conv, a skip-concatenated
// inner path (avgpool down, two convs, upsample back), and decoder convs
// fusing the concatenation — the architecture family the paper's future
// work targets. h and w must be even.
func UNetSpec(name string, inC, h, w, outC, base int, act string, psn bool) *Spec {
	if h%2 != 0 || w%2 != 0 {
		panic("nn: UNetSpec needs even spatial dims")
	}
	inner := []LayerSpec{
		{Type: "avgpool", Name: name + ".down", C: base, H: h, W: w, K: 2},
		{Type: "conv", Name: name + ".mid1", C: base, H: h / 2, W: w / 2,
			OutC: 2 * base, K: 3, Stride: 1, Pad: 1, PSN: psn},
		{Type: "act", Act: act},
		{Type: "conv", Name: name + ".mid2", C: 2 * base, H: h / 2, W: w / 2,
			OutC: base, K: 3, Stride: 1, Pad: 1, PSN: psn},
		{Type: "act", Act: act},
		{Type: "upsample", Name: name + ".up", C: base, H: h / 2, W: w / 2},
	}
	return &Spec{Name: name, InputDim: inC * h * w, Layers: []LayerSpec{
		{Type: "conv", Name: name + ".enc", C: inC, H: h, W: w,
			OutC: base, K: 3, Stride: 1, Pad: 1, PSN: psn},
		{Type: "act", Act: act},
		{Type: "skipconcat", Name: name + ".skip", C: base, OutC: base, H: h, W: w, Branch: inner},
		{Type: "conv", Name: name + ".dec", C: 2 * base, H: h, W: w,
			OutC: outC, K: 3, Stride: 1, Pad: 1, PSN: psn},
	}}
}

// lipProduct conservatively bounds a layer stack's Lipschitz constant
// for SkipConcat's own Lipschitzer implementation (used only as a cheap
// diagnostic; the error-flow analysis computes the exact rule itself).
func lipProduct(ls []Layer) float64 {
	p := 1.0
	for _, l := range ls {
		switch t := l.(type) {
		case Spectral:
			p *= t.LinearOp().Sigma
		case Lipschitzer:
			p *= t.Lipschitz()
		case *Residual, *SkipConcat:
			// Nested composites: fall back to a loose recursive bound.
			switch tt := t.(type) {
			case *Residual:
				b := lipProduct(tt.Branch)
				s := 1.0
				if len(tt.Shortcut) > 0 {
					s = lipProduct(tt.Shortcut)
				}
				p *= b + s
			case *SkipConcat:
				b := lipProduct(tt.Branch)
				p *= math.Sqrt(1 + b*b)
			}
		}
	}
	return p
}

// BranchLipschitz reports a conservative bound on the branch's Lipschitz
// constant (diagnostic; the analysis in internal/core is authoritative).
func (s *SkipConcat) BranchLipschitz() float64 { return lipProduct(s.Branch) }
