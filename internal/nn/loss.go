package nn

import (
	"math"

	"github.com/scidata/errprop/internal/tensor"
)

// MSELoss returns the mean squared error 1/(2B) * sum ||yhat - y||^2 over
// a batch and the gradient dL/dyhat.
func MSELoss(yhat, y *tensor.Matrix) (float64, *tensor.Matrix) {
	if yhat.Rows != y.Rows || yhat.Cols != y.Cols {
		panic("nn: MSELoss shape mismatch")
	}
	b := float64(yhat.Cols)
	grad := tensor.NewMatrix(yhat.Rows, yhat.Cols)
	var loss float64
	for i := range yhat.Data {
		d := yhat.Data[i] - y.Data[i]
		loss += d * d
		grad.Data[i] = d / b
	}
	return loss / (2 * b), grad
}

// MSELossShard is MSELoss restricted to a shard: yhat holds the network
// outputs for columns [lo, hi) of a batch whose full target matrix is y
// and whose full width is total. Loss and gradient are normalized by
// total, so concatenating shard gradient columns over a disjoint cover
// of the batch reproduces the full-batch MSELoss gradient bit for bit,
// and shard losses sum to the full-batch loss (up to the reducer's fixed
// summation order) — the properties the data-parallel trainer's
// determinism rests on.
func MSELossShard(yhat, y *tensor.Matrix, lo, hi, total int) (float64, *tensor.Matrix) {
	if yhat.Rows != y.Rows || yhat.Cols != hi-lo || lo < 0 || hi > y.Cols || total <= 0 {
		panic("nn: MSELossShard shape mismatch")
	}
	b := float64(total)
	w := hi - lo
	grad := tensor.NewMatrix(yhat.Rows, w)
	var loss float64
	for r := 0; r < yhat.Rows; r++ {
		yrow := y.Data[r*y.Cols+lo : r*y.Cols+hi]
		hrow := yhat.Data[r*w : (r+1)*w]
		grow := grad.Data[r*w : (r+1)*w]
		for c, h := range hrow {
			d := h - yrow[c]
			loss += d * d
			grow[c] = d / b
		}
	}
	return loss / (2 * b), grad
}

// CrossEntropyLossShard is CrossEntropyLoss restricted to a shard:
// logits holds columns [lo, hi) of a batch with label slice labels (full
// batch) and full width total. As with MSELossShard, shard losses and
// gradients compose exactly to the full-batch values.
func CrossEntropyLossShard(logits *tensor.Matrix, labels []int, lo, hi, total int) (float64, *tensor.Matrix) {
	if logits.Cols != hi-lo || lo < 0 || hi > len(labels) || total <= 0 {
		panic("nn: CrossEntropyLossShard shape mismatch")
	}
	p := Softmax(logits)
	b := float64(total)
	grad := tensor.NewMatrix(logits.Rows, logits.Cols)
	var loss float64
	for c, lbl := range labels[lo:hi] {
		if lbl < 0 || lbl >= logits.Rows {
			panic("nn: label out of range")
		}
		loss -= math.Log(math.Max(p.At(lbl, c), 1e-300))
		for r := 0; r < logits.Rows; r++ {
			g := p.At(r, c)
			if r == lbl {
				g -= 1
			}
			grad.Set(r, c, g/b)
		}
	}
	return loss / b, grad
}

// MSEShard adapts a full-batch target matrix into the trainer's LossFn.
func MSEShard(y *tensor.Matrix) LossFn {
	return func(out *tensor.Matrix, lo, hi, total int) (float64, *tensor.Matrix) {
		return MSELossShard(out, y, lo, hi, total)
	}
}

// CrossEntropyShard adapts a full-batch label slice into the trainer's
// LossFn.
func CrossEntropyShard(labels []int) LossFn {
	return func(out *tensor.Matrix, lo, hi, total int) (float64, *tensor.Matrix) {
		return CrossEntropyLossShard(out, labels, lo, hi, total)
	}
}

// Softmax computes the column-wise softmax of logits.
func Softmax(logits *tensor.Matrix) *tensor.Matrix {
	out := tensor.NewMatrix(logits.Rows, logits.Cols)
	for c := 0; c < logits.Cols; c++ {
		maxv := math.Inf(-1)
		for r := 0; r < logits.Rows; r++ {
			if v := logits.At(r, c); v > maxv {
				maxv = v
			}
		}
		var sum float64
		for r := 0; r < logits.Rows; r++ {
			e := math.Exp(logits.At(r, c) - maxv)
			out.Set(r, c, e)
			sum += e
		}
		inv := 1 / sum
		for r := 0; r < logits.Rows; r++ {
			out.Set(r, c, out.At(r, c)*inv)
		}
	}
	return out
}

// CrossEntropyLoss returns the mean negative log-likelihood of the true
// labels under the softmax of the logits, plus dL/dlogits.
func CrossEntropyLoss(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix) {
	if len(labels) != logits.Cols {
		panic("nn: CrossEntropyLoss label count mismatch")
	}
	p := Softmax(logits)
	b := float64(logits.Cols)
	grad := tensor.NewMatrix(logits.Rows, logits.Cols)
	var loss float64
	for c, lbl := range labels {
		if lbl < 0 || lbl >= logits.Rows {
			panic("nn: label out of range")
		}
		loss -= math.Log(math.Max(p.At(lbl, c), 1e-300))
		for r := 0; r < logits.Rows; r++ {
			g := p.At(r, c)
			if r == lbl {
				g -= 1
			}
			grad.Set(r, c, g/b)
		}
	}
	return loss / b, grad
}

// Accuracy returns the fraction of columns whose argmax matches the label.
func Accuracy(logits *tensor.Matrix, labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	correct := 0
	for c, lbl := range labels {
		best, bestR := math.Inf(-1), -1
		for r := 0; r < logits.Rows; r++ {
			if v := logits.At(r, c); v > best {
				best, bestR = v, r
			}
		}
		if bestR == lbl {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
