package nn

import "fmt"

// MLPSpec builds a multi-layer-perceptron spec: dims[0] inputs, hidden
// layers dims[1:len-1] each followed by the activation, and a linear
// output layer of dims[len-1] features. With psn=true every dense layer
// is PSN-reparameterized.
func MLPSpec(name string, dims []int, act string, psn bool) *Spec {
	if len(dims) < 2 {
		panic("nn: MLPSpec needs at least input and output dims")
	}
	s := &Spec{Name: name, InputDim: dims[0]}
	for i := 0; i+1 < len(dims); i++ {
		s.Layers = append(s.Layers, LayerSpec{
			Type: "dense", Name: fmt.Sprintf("%s.fc%d", name, i),
			In: dims[i], Out: dims[i+1], PSN: psn, InitAct: act,
		})
		if i+2 < len(dims) { // hidden layers get the activation
			s.Layers = append(s.Layers, LayerSpec{Type: "act", Act: act})
		}
	}
	return s
}

// ResNetSpec builds a ResNet-style spec for (inC, h, w) inputs and
// numClasses outputs: a 3x3 stem conv, stages of basic residual blocks
// (two 3x3 convs; a 1x1 projection shortcut whenever shape changes,
// stride-2 downsampling at each stage boundary after the first), global
// average pooling and a dense classification head. blocks[i] gives the
// number of residual blocks in stage i; channels[i] its width.
//
// ResNet-18 corresponds to blocks = [2,2,2,2] with channels
// [64,128,256,512]; the reduced variants used in tests shrink channels
// and input size but keep the topology.
func ResNetSpec(name string, inC, h, w, numClasses int, blocks, channels []int, act string, psn bool) *Spec {
	if len(blocks) != len(channels) || len(blocks) == 0 {
		panic("nn: ResNetSpec blocks/channels mismatch")
	}
	s := &Spec{Name: name, InputDim: inC * h * w}
	c, curH, curW := channels[0], h, w
	s.Layers = append(s.Layers,
		LayerSpec{Type: "conv", Name: name + ".stem", C: inC, H: curH, W: curW,
			OutC: c, K: 3, Stride: 1, Pad: 1, PSN: psn},
		LayerSpec{Type: "act", Act: act},
	)
	for stage, nb := range blocks {
		outC := channels[stage]
		for b := 0; b < nb; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			bh, bw := curH, curW
			oh, ow := (bh+2-3)/stride+1, (bw+2-3)/stride+1
			branch := []LayerSpec{
				{Type: "conv", Name: fmt.Sprintf("%s.s%db%d.conv1", name, stage, b),
					C: c, H: bh, W: bw, OutC: outC, K: 3, Stride: stride, Pad: 1, PSN: psn},
				{Type: "act", Act: act},
				{Type: "conv", Name: fmt.Sprintf("%s.s%db%d.conv2", name, stage, b),
					C: outC, H: oh, W: ow, OutC: outC, K: 3, Stride: 1, Pad: 1, PSN: psn},
			}
			var shortcut []LayerSpec
			if stride != 1 || c != outC {
				shortcut = []LayerSpec{
					{Type: "conv", Name: fmt.Sprintf("%s.s%db%d.proj", name, stage, b),
						C: c, H: bh, W: bw, OutC: outC, K: 1, Stride: stride, Pad: 0, PSN: psn},
				}
			}
			s.Layers = append(s.Layers,
				LayerSpec{Type: "residual", Name: fmt.Sprintf("%s.s%db%d", name, stage, b),
					Branch: branch, Shortcut: shortcut},
				LayerSpec{Type: "act", Act: act},
			)
			c, curH, curW = outC, oh, ow
		}
	}
	s.Layers = append(s.Layers,
		LayerSpec{Type: "gap", Name: name + ".gap", C: c, H: curH, W: curW},
		LayerSpec{Type: "dense", Name: name + ".head", In: c, Out: numClasses, PSN: psn},
	)
	return s
}

// FeatureNetwork returns a copy of the network truncated before its final
// dense head, exposing the "final feature map" the paper uses as the QoI
// for the EuroSAT task. The returned network shares layer state with the
// original.
func (n *Network) FeatureNetwork() *Network {
	if len(n.Layers) == 0 {
		return n
	}
	if _, ok := n.Layers[len(n.Layers)-1].(*Dense); !ok {
		return n
	}
	out := &Network{InputDim: n.InputDim, Layers: n.Layers[:len(n.Layers)-1]}
	if n.Spec != nil && len(n.Spec.Layers) == len(n.Layers) {
		spec := *n.Spec
		spec.Name += "-features"
		spec.Layers = spec.Layers[:len(spec.Layers)-1]
		out.Spec = &spec
	}
	return out
}
