package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/tensor"
)

func TestActivationLipschitzHolds(t *testing.T) {
	// Property: |phi(a)-phi(b)| <= C |a-b| for every supported activation.
	rng := rand.New(rand.NewSource(1))
	for _, kind := range []string{ActIdentity, ActTanh, ActReLU, ActLeaky, ActPReLU, ActGELU, ActSigmoid} {
		a := MustActivation(kind)
		c := a.Lipschitz()
		for trial := 0; trial < 2000; trial++ {
			x, y := rng.NormFloat64()*3, rng.NormFloat64()*3
			if d := math.Abs(a.apply(x) - a.apply(y)); d > c*math.Abs(x-y)*(1+1e-9) {
				t.Fatalf("%s: |phi(%v)-phi(%v)| = %v > C*|dx| = %v", kind, x, y, d, c*math.Abs(x-y))
			}
		}
	}
}

func TestActivationDerivBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, kind := range []string{ActTanh, ActReLU, ActLeaky, ActPReLU, ActGELU, ActSigmoid} {
		a := MustActivation(kind)
		c := a.Lipschitz()
		for trial := 0; trial < 2000; trial++ {
			x := rng.NormFloat64() * 4
			if d := math.Abs(a.deriv(x)); d > c*(1+1e-9) {
				t.Fatalf("%s: |phi'(%v)| = %v > C = %v", kind, x, d, c)
			}
		}
	}
}

func TestUnknownActivation(t *testing.T) {
	if _, err := NewActivation("swish"); err == nil {
		t.Fatal("unknown activation should error")
	}
}

func TestPSNSigmaEqualsAlpha(t *testing.T) {
	// The defining property of PSN (Eq. 6): after reparameterization the
	// layer's spectral norm is exactly alpha.
	rng := rand.New(rand.NewSource(3))
	d := NewDense("d", 20, 15, ActTanh, true, rng)
	d.Alpha.Data[0] = 2.5
	d.RefreshSigma()
	eff := d.EffectiveMatrix()
	sigma := tensor.SpectralNorm(eff, 200)
	if math.Abs(sigma-2.5) > 1e-6 {
		t.Fatalf("sigma(W_psn) = %v, want alpha = 2.5", sigma)
	}
	if got := d.LinearOp().Sigma; math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("LinearOp().Sigma = %v", got)
	}
}

func TestPSNConvSigmaEqualsAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewConv2D("c", 3, 8, 8, 4, 3, 1, 1, true, rng)
	c.Alpha.Data[0] = 1.7
	c.RefreshSigma()
	// Measure the operator norm of the effective conv by random probing.
	kw := c.EffectiveKernel()
	var maxRatio float64
	for trial := 0; trial < 50; trial++ {
		x := make(tensor.Vector, c.InDim())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		r := c.applyOp(kw, x).Norm2() / x.Norm2()
		if r > maxRatio {
			maxRatio = r
		}
	}
	if maxRatio > 1.7*(1+1e-6) {
		t.Fatalf("conv operator norm probe %v exceeds alpha 1.7", maxRatio)
	}
	if maxRatio < 0.3 {
		t.Fatalf("conv operator probe suspiciously small: %v", maxRatio)
	}
}

func TestDenseSpectralMatchesSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense("d", 12, 9, "", false, rng)
	d.ensureSigma() // plain layers compute sigma lazily
	want := tensor.SingularValues(d.rawMatrix())[0]
	if math.Abs(d.sigmaRaw-want) > 1e-6 {
		t.Fatalf("dense sigma %v, SVD %v", d.sigmaRaw, want)
	}
}

func TestTrainXORConverges(t *testing.T) {
	// Small end-to-end training sanity check.
	spec := MLPSpec("xor", []int{2, 8, 1}, ActTanh, false)
	net, err := spec.Build(42)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrixFrom(2, 4, []float64{0, 0, 1, 1, 0, 1, 0, 1})
	y := tensor.NewMatrixFrom(1, 4, []float64{0, 1, 1, 0})
	opt := NewSGD(0.5, 0.9, 0)
	var loss float64
	for epoch := 0; epoch < 2000; epoch++ {
		net.ZeroGrad()
		out := net.Forward(x, true)
		var grad *tensor.Matrix
		loss, grad = MSELoss(out, y)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	if loss > 1e-3 {
		t.Fatalf("XOR did not converge: loss %v", loss)
	}
}

func TestTrainPSNRegressionConverges(t *testing.T) {
	// PSN-reparameterized network with spectral penalty must still fit a
	// smooth function, and its per-layer sigmas must stay moderate.
	rng := rand.New(rand.NewSource(7))
	spec := MLPSpec("psn", []int{2, 16, 16, 1}, ActTanh, true)
	net, err := spec.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	nSamples := 64
	x := tensor.NewMatrix(2, nSamples)
	y := tensor.NewMatrix(1, nSamples)
	for i := 0; i < nSamples; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x.Set(0, i, a)
		x.Set(1, i, b)
		y.Set(0, i, math.Sin(2*a)+0.5*b)
	}
	opt := NewAdam(0.01)
	var loss float64
	for epoch := 0; epoch < 1500; epoch++ {
		net.ZeroGrad()
		out := net.Forward(x, true)
		var grad *tensor.Matrix
		loss, grad = MSELoss(out, y)
		net.AddRegGrad(1e-4)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	if loss > 5e-3 {
		t.Fatalf("PSN regression did not converge: loss %v", loss)
	}
	net.RefreshSigmas()
	for _, op := range net.LinearOps() {
		if op.Sigma > 10 {
			t.Fatalf("PSN layer %s sigma %v too large (penalty ineffective)", op.LayerName, op.Sigma)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	spec := MLPSpec("m", []int{5, 10, 3}, ActReLU, true)
	net, err := spec.Build(9)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb weights away from init so the test is meaningful.
	for _, p := range net.Params() {
		for i := range p.Data {
			p.Data[i] += rng.NormFloat64() * 0.1
		}
	}
	net.RefreshSigmas()
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := randBatch(rng, 5, 7)
	a := net.Forward(x, false)
	b := loaded.Forward(x, false)
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > 1e-9 {
			t.Fatalf("loaded model diverges at %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage model should error")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty model should error")
	}
}

func TestResNetSpecGeometry(t *testing.T) {
	spec := ResNetSpec("rn", 3, 16, 16, 10, []int{2, 2}, []int{8, 16}, ActReLU, true)
	net, err := spec.Build(11)
	if err != nil {
		t.Fatal(err)
	}
	x := randBatch(rand.New(rand.NewSource(1)), 3*16*16, 2)
	out := net.Forward(x, false)
	if out.Rows != 10 || out.Cols != 2 {
		t.Fatalf("resnet output %dx%d, want 10x2", out.Rows, out.Cols)
	}
	// Backward must run through the whole depth.
	net.ZeroGrad()
	out = net.Forward(x, true)
	_, grad := MSELoss(out, tensor.NewMatrix(10, 2))
	net.Backward(grad)
}

func TestFeatureNetwork(t *testing.T) {
	spec := ResNetSpec("rn", 1, 8, 8, 4, []int{1}, []int{4}, ActReLU, false)
	net, err := spec.Build(12)
	if err != nil {
		t.Fatal(err)
	}
	feat := net.FeatureNetwork()
	if len(feat.Layers) != len(net.Layers)-1 {
		t.Fatalf("feature net layers %d, want %d", len(feat.Layers), len(net.Layers)-1)
	}
	x := randBatch(rand.New(rand.NewSource(2)), 64, 1)
	out := feat.Forward(x, false)
	if out.Rows != 4 { // channel count after GAP
		t.Fatalf("feature dim %d, want 4", out.Rows)
	}
}

func TestNetworkFLOPsAndParams(t *testing.T) {
	spec := MLPSpec("m", []int{10, 20, 5}, ActTanh, false)
	net, err := spec.Build(13)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := net.FLOPs(), int64(2*(10*20+20*5)); got != want {
		t.Fatalf("FLOPs = %d, want %d", got, want)
	}
	if got, want := net.NumParams(), 10*20+20+20*5+5; got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	if got, want := net.WeightBytes(4), int64(4*(10*20+20*5)); got != want {
		t.Fatalf("WeightBytes = %d, want %d", got, want)
	}
}

func TestLinearOpsOrderAndGains(t *testing.T) {
	spec := MLPSpec("m", []int{4, 8, 2}, ActTanh, false)
	net, err := spec.Build(14)
	if err != nil {
		t.Fatal(err)
	}
	ops := net.LinearOps()
	if len(ops) != 2 {
		t.Fatalf("want 2 linear ops, got %d", len(ops))
	}
	if ops[0].InDim != 4 || ops[0].OutDim != 8 || ops[1].InDim != 8 || ops[1].OutDim != 2 {
		t.Fatalf("op dims wrong: %+v", ops)
	}
	if ops[0].AddGain != math.Sqrt(8) || ops[0].InflGain != 2 {
		t.Fatalf("dense gains wrong: %+v", ops[0])
	}
	if len(ops[1].RowNorms) != 2 {
		t.Fatalf("row norms missing: %+v", ops[1])
	}
}

func TestConv1x1GainsReduceToDense(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	c := NewConv2D("c", 6, 1, 1, 4, 1, 1, 0, false, rng)
	op := c.LinearOp()
	if op.AddGain != math.Sqrt(4) {
		t.Fatalf("1x1 conv AddGain = %v, want 2", op.AddGain)
	}
	if op.InflGain != math.Sqrt(4) { // min(6*1*1, 4) = 4
		t.Fatalf("1x1 conv InflGain = %v, want 2", op.InflGain)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	logits := randBatch(rng, 7, 5)
	p := Softmax(logits)
	for c := 0; c < 5; c++ {
		var s float64
		for r := 0; r < 7; r++ {
			s += p.At(r, c)
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("softmax column %d sums to %v", c, s)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.NewMatrixFrom(2, 3, []float64{
		0.9, 0.1, 0.4,
		0.1, 0.9, 0.6,
	})
	if got := Accuracy(logits, []int{0, 1, 0}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
}

func TestAvgPoolLipschitz(t *testing.T) {
	// Empirical check: for random inputs ||pool(a)-pool(b)|| <= (1/K)||a-b||.
	rng := rand.New(rand.NewSource(17))
	p := NewAvgPool2D("p", 2, 8, 8, 2)
	c := p.Lipschitz()
	for trial := 0; trial < 50; trial++ {
		a := randBatch(rng, 128, 1)
		b := randBatch(rng, 128, 1)
		da := tensor.Vector(p.Forward(a, false).Data).Sub(tensor.Vector(p.Forward(b, false).Data))
		din := tensor.Vector(a.Data).Sub(tensor.Vector(b.Data))
		if da.Norm2() > c*din.Norm2()*(1+1e-9) {
			t.Fatalf("avgpool violated Lipschitz: %v > %v", da.Norm2(), c*din.Norm2())
		}
	}
}

func TestGlobalAvgPoolLipschitz(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	p := NewGlobalAvgPool("p", 3, 4, 4)
	c := p.Lipschitz()
	for trial := 0; trial < 50; trial++ {
		a := randBatch(rng, 48, 1)
		b := randBatch(rng, 48, 1)
		da := tensor.Vector(p.Forward(a, false).Data).Sub(tensor.Vector(p.Forward(b, false).Data))
		din := tensor.Vector(a.Data).Sub(tensor.Vector(b.Data))
		if da.Norm2() > c*din.Norm2()*(1+1e-9) {
			t.Fatalf("gap violated Lipschitz: %v > %v", da.Norm2(), c*din.Norm2())
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Layers: []LayerSpec{{Type: "dense"}}},                                         // missing dims
		{Layers: []LayerSpec{{Type: "warp"}}},                                          // unknown type
		{Layers: []LayerSpec{{Type: "conv", C: 1}}},                                    // missing geometry
		{Layers: []LayerSpec{{Type: "act", Act: "nope"}}},                              // unknown act
		{Layers: []LayerSpec{{Type: "residual", Branch: []LayerSpec{{Type: "warp"}}}}}, // nested error
	}
	for i, s := range bad {
		if _, err := s.Build(0); err == nil {
			t.Errorf("spec %d should fail to build", i)
		}
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := NewParam("w", 1)
	p.Data[0] = 1
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*Param{p}) // grad 0, decay only
	if p.Data[0] >= 1 {
		t.Fatalf("weight decay did not shrink weight: %v", p.Data[0])
	}
}

func TestAdamStepDirection(t *testing.T) {
	p := NewParam("w", 1)
	p.Data[0] = 1
	p.Grad[0] = 1
	opt := NewAdam(0.1)
	opt.Step([]*Param{p})
	if p.Data[0] >= 1 {
		t.Fatal("Adam should step against the gradient")
	}
}

func BenchmarkMLPForward(b *testing.B) {
	spec := MLPSpec("m", []int{9, 50, 50, 9}, ActTanh, true)
	net, err := spec.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	x := randBatch(rand.New(rand.NewSource(1)), 9, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkResNetForward(b *testing.B) {
	spec := ResNetSpec("rn", 3, 16, 16, 10, []int{2, 2}, []int{8, 16}, ActReLU, true)
	net, err := spec.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	x := randBatch(rand.New(rand.NewSource(1)), 3*16*16, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func TestSaveLoadAllLayerTypes(t *testing.T) {
	// A spec exercising every serializable layer type must round-trip
	// bit-exactly through Save/Load.
	spec := &Spec{Name: "all", InputDim: 2 * 8 * 8, Layers: []LayerSpec{
		{Type: "conv", Name: "c1", C: 2, H: 8, W: 8, OutC: 4, K: 3, Stride: 1, Pad: 1, PSN: true},
		{Type: "bn", Name: "bn1", C: 4, H: 8, W: 8},
		{Type: "act", Act: ActPReLU},
		{Type: "round", Name: "r1", Fmt: "fp16"},
		{Type: "maxpool", Name: "mp", C: 4, H: 8, W: 8, K: 2},
		{Type: "upsample", Name: "up", C: 4, H: 4, W: 4},
		{Type: "skipconcat", Name: "sc", C: 4, OutC: 4, H: 8, W: 8, Branch: []LayerSpec{
			{Type: "conv", Name: "b1", C: 4, H: 8, W: 8, OutC: 4, K: 3, Stride: 1, Pad: 1},
			{Type: "act", Act: ActGELU},
		}},
		{Type: "residual", Name: "res", Branch: []LayerSpec{
			{Type: "conv", Name: "rb", C: 8, H: 8, W: 8, OutC: 8, K: 3, Stride: 1, Pad: 1},
		}},
		{Type: "avgpool", Name: "ap", C: 8, H: 8, W: 8, K: 2},
		{Type: "gap", Name: "g", C: 8, H: 4, W: 4},
		{Type: "dense", Name: "fc", In: 8, Out: 3, PSN: true},
	}}
	net, err := spec.Build(31)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	// Run a train-mode pass so BN running stats move off their init.
	x := randBatch(rng, 2*8*8, 4)
	net.ZeroGrad()
	out := net.Forward(x, true)
	_, grad := MSELoss(out, tensor.NewMatrix(3, 4))
	net.Backward(grad)
	// PSN effective weights depend on the sigma estimate; refresh so the
	// saved network and the loaded one (which refreshes on Load) agree.
	net.RefreshSigmas()

	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := net.Forward(x, false)
	b := loaded.Forward(x, false)
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > 1e-9 {
			t.Fatalf("all-layer roundtrip diverges at %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

func TestRoundLayerBehaviour(t *testing.T) {
	r, err := NewRoundLayer("r", numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrixFrom(2, 1, []float64{1 + 0x1p-13, -0.5})
	out := r.Forward(x, false)
	if out.Data[0] != 1 { // rounds to fp16 grid
		t.Fatalf("round output %v, want 1", out.Data[0])
	}
	if out.Data[1] != -0.5 { // exactly representable
		t.Fatalf("round output %v, want -0.5", out.Data[1])
	}
	// Backward is straight-through.
	g := tensor.NewMatrixFrom(2, 1, []float64{3, 4})
	back := r.Backward(g)
	if back.Data[0] != 3 || back.Data[1] != 4 {
		t.Fatal("round backward should pass gradients through")
	}
	if r.Lipschitz() != 1 || r.RelEps() != 0x1p-11 {
		t.Fatalf("round metadata wrong: C=%v eps=%v", r.Lipschitz(), r.RelEps())
	}
}
