package nn

import (
	"fmt"
	"math"

	"github.com/scidata/errprop/internal/tensor"
)

// BatchNorm2D normalizes each channel over (batch, spatial), the
// standard ResNet ingredient the paper's non-PSN baselines train with.
// Training mode uses batch statistics and updates running estimates;
// inference mode applies the frozen affine transform
//
//	y = gamma * (x - mean) / sqrt(var + eps) + beta.
//
// BatchNorm is affine at inference, so before error analysis or
// quantization it must be *folded* into the preceding convolution via
// FoldBatchNorm — after folding the network contains only layers the
// error-flow algebra models exactly.
type BatchNorm2D struct {
	C, H, W  int
	Eps      float64
	Momentum float64

	Gamma, Beta *Param
	RunMean     *Param // running statistics live in Params so they serialize
	RunVar      *Param

	// Cached state for backward.
	inX    *tensor.Matrix
	xhat   *tensor.Matrix
	mean   []float64
	invStd []float64
	name   string
}

// NewBatchNorm2D builds a batch-norm layer over (c, h, w) feature maps.
func NewBatchNorm2D(name string, c, h, w int) *BatchNorm2D {
	bn := &BatchNorm2D{C: c, H: h, W: w, Eps: 1e-5, Momentum: 0.1, name: name}
	bn.Gamma = NewParam(name+".gamma", c)
	bn.Beta = NewParam(name+".beta", c)
	bn.RunMean = NewParam(name+".rmean", c)
	bn.RunVar = NewParam(name+".rvar", c)
	for i := 0; i < c; i++ {
		bn.Gamma.Data[i] = 1
		bn.RunVar.Data[i] = 1
	}
	return bn
}

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return bn.name }

// InDim returns the flattened feature count.
func (bn *BatchNorm2D) InDim() int { return bn.C * bn.H * bn.W }

// Lipschitz returns the inference-mode operator bound
// max_c |gamma_c| / sqrt(runvar_c + eps). Note the affine shift makes
// the raw layer unsuitable for the signal-norm channel — fold it first.
func (bn *BatchNorm2D) Lipschitz() float64 {
	var m float64
	for c := 0; c < bn.C; c++ {
		if v := math.Abs(bn.Gamma.Data[c]) / math.Sqrt(bn.RunVar.Data[c]+bn.Eps); v > m {
			m = v
		}
	}
	return m
}

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Rows != bn.InDim() {
		panic(fmt.Sprintf("nn: %s input rows %d != %d", bn.name, x.Rows, bn.InDim()))
	}
	batch := x.Cols
	spatial := bn.H * bn.W
	//lint:ignore hotalloc legacy per-call layer path; the compiled engine (infer.go) is the zero-alloc fast path
	out := tensor.NewMatrix(x.Rows, batch)
	if train {
		bn.inX = x.Clone()
		//lint:ignore hotalloc training-only backward cache; inference goes through the engine
		bn.xhat = tensor.NewMatrix(x.Rows, batch)
		bn.mean = make([]float64, bn.C)
		bn.invStd = make([]float64, bn.C)
	}
	for c := 0; c < bn.C; c++ {
		var mean, varv float64
		if train {
			n := float64(spatial * batch)
			for s := 0; s < spatial; s++ {
				row := x.Data[(c*spatial+s)*batch : (c*spatial+s+1)*batch]
				for _, v := range row {
					mean += v
				}
			}
			mean /= n
			for s := 0; s < spatial; s++ {
				row := x.Data[(c*spatial+s)*batch : (c*spatial+s+1)*batch]
				for _, v := range row {
					d := v - mean
					varv += d * d
				}
			}
			varv /= n
			bn.RunMean.Data[c] = (1-bn.Momentum)*bn.RunMean.Data[c] + bn.Momentum*mean
			bn.RunVar.Data[c] = (1-bn.Momentum)*bn.RunVar.Data[c] + bn.Momentum*varv
			bn.mean[c] = mean
			bn.invStd[c] = 1 / math.Sqrt(varv+bn.Eps)
		} else {
			mean = bn.RunMean.Data[c]
			varv = bn.RunVar.Data[c]
		}
		inv := 1 / math.Sqrt(varv+bn.Eps)
		g, b := bn.Gamma.Data[c], bn.Beta.Data[c]
		for s := 0; s < spatial; s++ {
			base := (c*spatial + s) * batch
			for n := 0; n < batch; n++ {
				xh := (x.Data[base+n] - mean) * inv
				if train {
					bn.xhat.Data[base+n] = xh
				}
				out.Data[base+n] = g*xh + b
			}
		}
	}
	return out
}

// Backward implements Layer (full batch-norm gradient through the batch
// statistics).
func (bn *BatchNorm2D) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if bn.inX == nil {
		panic("nn: batchnorm Backward before Forward(train)")
	}
	batch := grad.Cols
	spatial := bn.H * bn.W
	out := tensor.NewMatrix(grad.Rows, batch)
	n := float64(spatial * batch)
	for c := 0; c < bn.C; c++ {
		g := bn.Gamma.Data[c]
		inv := bn.invStd[c]
		var sumDy, sumDyXhat float64
		for s := 0; s < spatial; s++ {
			base := (c*spatial + s) * batch
			for k := 0; k < batch; k++ {
				dy := grad.Data[base+k]
				sumDy += dy
				sumDyXhat += dy * bn.xhat.Data[base+k]
			}
		}
		bn.Beta.Grad[c] += sumDy
		bn.Gamma.Grad[c] += sumDyXhat
		for s := 0; s < spatial; s++ {
			base := (c*spatial + s) * batch
			for k := 0; k < batch; k++ {
				dy := grad.Data[base+k]
				xh := bn.xhat.Data[base+k]
				out.Data[base+k] = g * inv * (dy - sumDy/n - xh*sumDyXhat/n)
			}
		}
	}
	return out
}

// Params implements Layer. Running stats are exposed so Save/Load keeps
// them, but optimizers see zero gradients for them.
func (bn *BatchNorm2D) Params() []*Param {
	return []*Param{bn.Gamma, bn.Beta, bn.RunMean, bn.RunVar}
}

// FoldBatchNorm returns an inference copy of net in which every
// BatchNorm2D immediately following a Conv2D has been folded into the
// convolution's weights and bias:
//
//	W' = gamma/sqrt(var+eps) * W,   b' = gamma*(b-mean)/sqrt(var+eps) + beta
//
// The result contains no BatchNorm layers, so the error-flow analysis
// applies exactly. Networks with a BatchNorm not preceded by a conv are
// rejected.
func FoldBatchNorm(net *Network) (*Network, error) {
	folded, err := foldLayers(net.Layers)
	if err != nil {
		return nil, err
	}
	// The folded network is an inference artifact: its layer list no
	// longer matches any Spec (folded convs are plain layers regardless
	// of the original's PSN flags), so it carries none and cannot be
	// re-serialized — fold again after loading instead.
	out := &Network{InputDim: net.InputDim, Layers: folded}
	out.RefreshSigmas()
	return out, nil
}

func foldLayers(layers []Layer) ([]Layer, error) {
	var out []Layer
	for _, l := range layers {
		switch t := l.(type) {
		case *BatchNorm2D:
			if len(out) == 0 {
				return nil, fmt.Errorf("nn: BatchNorm %s has no preceding conv to fold into", t.Name())
			}
			conv, ok := out[len(out)-1].(*Conv2D)
			if !ok {
				return nil, fmt.Errorf("nn: BatchNorm %s follows %T, not a conv", t.Name(), out[len(out)-1])
			}
			out[len(out)-1] = foldIntoConv(conv, t)
		case *Residual:
			branch, err := foldLayers(t.Branch)
			if err != nil {
				return nil, err
			}
			shortcut, err := foldLayers(t.Shortcut)
			if err != nil {
				return nil, err
			}
			out = append(out, NewResidual(t.Name(), branch, shortcut))
		default:
			out = append(out, l)
		}
	}
	return out, nil
}

// foldIntoConv bakes the BN affine transform into a fresh conv layer.
func foldIntoConv(c *Conv2D, bn *BatchNorm2D) *Conv2D {
	kw := c.EffectiveKernel().Clone()
	b := append([]float64(nil), c.B.Data...)
	cols := c.InC * c.K * c.K
	for oc := 0; oc < c.OutC; oc++ {
		scale := bn.Gamma.Data[oc] / math.Sqrt(bn.RunVar.Data[oc]+bn.Eps)
		for j := 0; j < cols; j++ {
			kw.Data[oc*cols+j] *= scale
		}
		b[oc] = scale*(b[oc]-bn.RunMean.Data[oc]) + bn.Beta.Data[oc]
	}
	return NewConv2DFromWeights(c.Name()+"+bn", c.InC, c.H, c.W, c.OutC, c.K, c.Stride, c.Pad, kw.Data, b)
}
