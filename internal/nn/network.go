package nn

import (
	"fmt"

	"github.com/scidata/errprop/internal/tensor"
)

// Network is a sequence of layers (possibly including Residual blocks)
// with a fixed input dimension.
type Network struct {
	InputDim int
	Layers   []Layer
	// Spec records how the network was built, enabling serialization and
	// the construction of quantized inference copies. May be nil for
	// hand-assembled networks.
	Spec *Spec

	// Lazily compiled 1-column inference engine backing ForwardVec, plus
	// its reusable input buffer. vecTried gates a single compile attempt;
	// networks the engine cannot compile (hand-assembled layer types)
	// fall back to the allocating path. Clone() rebuilds from Spec, so
	// these unexported fields never leak across copies.
	vecEng   *Engine
	vecIn    *tensor.Matrix
	vecTried bool
}

// Forward runs the network on a (features x batch) matrix.
//
//errprop:deterministic inference is a pure function of weights and input
func (n *Network) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	h := x
	for _, l := range n.Layers {
		h = l.Forward(h, train)
	}
	return h
}

// ForwardVec runs a single sample through the network. It routes
// through a cached 1-column compiled engine (bit-identical to Forward;
// the only steady-state allocation is the returned vector), falling back
// to the legacy matrix path for networks the engine cannot compile.
// Like Forward, it is not safe for concurrent use.
func (n *Network) ForwardVec(x tensor.Vector) tensor.Vector {
	if !n.vecTried {
		n.vecTried = true
		if eng, err := CompileInference(n, 1); err == nil {
			n.vecEng = eng
		}
	}
	if n.vecEng == nil {
		//lint:ignore hotalloc legacy fallback for hand-assembled networks; the compiled-engine path above is allocation-free
		m := tensor.NewMatrixFrom(len(x), 1, x)
		out := n.Forward(m, false)
		return tensor.Vector(out.Data)
	}
	n.vecIn = tensor.EnsureMatrix(n.vecIn, len(x), 1)
	copy(n.vecIn.Data, x)
	out := n.vecEng.Forward(n.vecIn)
	return append(tensor.Vector(nil), out.Data...)
}

// Backward propagates dL/d(output) through the network, accumulating
// parameter gradients, and returns dL/d(input).
func (n *Network) Backward(grad *tensor.Matrix) *tensor.Matrix {
	g := grad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
	return g
}

// forEachLayer visits every layer in forward order, descending into
// residual branches, shortcuts, and skip-connection branches.
func (n *Network) forEachLayer(fn func(Layer)) {
	var walk func(ls []Layer)
	walk = func(ls []Layer) {
		for _, l := range ls {
			fn(l)
			switch t := l.(type) {
			case *Residual:
				walk(t.Branch)
				walk(t.Shortcut)
			case *SkipConcat:
				walk(t.Branch)
			}
		}
	}
	walk(n.Layers)
}

// StepSigmas advances every PSN layer's warm-started power iteration by
// one training step. The serial training loop runs this implicitly
// inside Forward(train=true); the data-parallel trainer calls it
// explicitly on the master network once per optimizer step (then
// broadcasts the estimates to replicas whose own stepping is frozen), so
// the sigma trajectory is a function of the step count alone — not of
// how the batch was sharded across workers.
func (n *Network) StepSigmas() {
	n.forEachLayer(func(l Layer) {
		switch t := l.(type) {
		case *Dense:
			if t.PSN {
				t.stepSigma()
			}
		case *Conv2D:
			if t.PSN {
				t.stepSigma()
			}
		}
	})
}

// SetSigmaStepping enables or disables the per-forward sigma power
// iteration of PSN layers. Replicas in a data-parallel trainer run with
// stepping disabled: their sigma estimates are broadcast from the
// master, and a per-shard iteration would make the effective weights
// depend on the worker schedule.
func (n *Network) SetSigmaStepping(enabled bool) {
	n.forEachLayer(func(l Layer) {
		switch t := l.(type) {
		case *Dense:
			t.sigmaFrozen = !enabled
		case *Conv2D:
			t.sigmaFrozen = !enabled
		}
	})
}

// GradSize returns the total element count of all parameter gradients —
// the length of a flat reduction buffer.
func (n *Network) GradSize() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Grad)
	}
	return total
}

// CopyGradsTo serializes every parameter gradient into dst in parameter
// order and returns the number of elements written. dst must be at
// least GradSize long.
func (n *Network) CopyGradsTo(dst []float64) int {
	off := 0
	for _, p := range n.Params() {
		off += p.CopyGradTo(dst[off:])
	}
	return off
}

// AccumGradsFrom adds a flat gradient buffer (as written by CopyGradsTo)
// elementwise into the parameter gradients and returns the number of
// elements consumed.
func (n *Network) AccumGradsFrom(src []float64) int {
	off := 0
	for _, p := range n.Params() {
		off += p.AccumGradFrom(src[off:])
	}
	return off
}

// SyncFrom copies src's parameter values and spectral-norm estimates
// into n (shapes must match; n is typically a Clone of src). Gradients
// and optimizer state are untouched.
func (n *Network) SyncFrom(src *Network) error {
	dst, sp := n.Params(), src.Params()
	if len(dst) != len(sp) {
		return fmt.Errorf("nn: SyncFrom parameter count mismatch %d vs %d", len(sp), len(dst))
	}
	for i, p := range sp {
		if len(p.Data) != len(dst[i].Data) {
			return fmt.Errorf("nn: SyncFrom parameter %s length mismatch %d vs %d", p.Name, len(p.Data), len(dst[i].Data))
		}
		dst[i].CopyDataFrom(p)
	}
	if !n.setSpectralSigmas(src.spectralSigmas()) {
		return fmt.Errorf("nn: SyncFrom spectral layer mismatch")
	}
	return nil
}

// Params returns all learnable parameters in layer order.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// AddRegGrad accumulates the PSN spectral penalty gradient across all
// layers and returns the total penalty value.
func (n *Network) AddRegGrad(lambda float64) float64 {
	var s float64
	for _, l := range n.Layers {
		if reg, ok := l.(Regularized); ok {
			s += reg.AddRegGrad(lambda)
		}
	}
	return s
}

// RefreshSigmas recomputes every spectral layer's operator norm with full
// power iterations (call after training or weight mutation, before
// analysis).
func (n *Network) RefreshSigmas() {
	var walk func(ls []Layer)
	walk = func(ls []Layer) {
		for _, l := range ls {
			switch t := l.(type) {
			case Spectral:
				t.RefreshSigma()
			case *Residual:
				walk(t.Branch)
				walk(t.Shortcut)
			case *SkipConcat:
				walk(t.Branch)
			}
		}
	}
	walk(n.Layers)
}

// spectralSigmas collects every spectral layer's current sigma estimate
// in forward order (computing lazily where needed).
func (n *Network) spectralSigmas() []float64 {
	var out []float64
	var walk func(ls []Layer)
	walk = func(ls []Layer) {
		for _, l := range ls {
			switch t := l.(type) {
			case *Dense:
				t.ensureSigma()
				out = append(out, t.sigmaRaw)
			case *Conv2D:
				t.ensureSigma()
				out = append(out, t.sigmaRaw)
			case *Residual:
				walk(t.Branch)
				walk(t.Shortcut)
			case *SkipConcat:
				walk(t.Branch)
			}
		}
	}
	walk(n.Layers)
	return out
}

// setSpectralSigmas restores persisted sigma estimates; returns false on
// a count mismatch (caller falls back to recomputation).
func (n *Network) setSpectralSigmas(sigmas []float64) bool {
	i := 0
	okAll := true
	var walk func(ls []Layer)
	walk = func(ls []Layer) {
		for _, l := range ls {
			switch t := l.(type) {
			case *Dense:
				if i >= len(sigmas) {
					okAll = false
					return
				}
				t.sigmaRaw, t.sigmaOK = sigmas[i], true
				i++
			case *Conv2D:
				if i >= len(sigmas) {
					okAll = false
					return
				}
				t.sigmaRaw, t.sigmaOK = sigmas[i], true
				i++
			case *Residual:
				walk(t.Branch)
				walk(t.Shortcut)
			case *SkipConcat:
				walk(t.Branch)
			}
		}
	}
	walk(n.Layers)
	return okAll && i == len(sigmas)
}

// spectralIterVectors collects (deep-copied) each spectral layer's
// power-iteration warm-start vector, in the same forward order as
// spectralSigmas. The vectors are genuine training state: stepSigma
// warm-starts from them, so a resumed run reproduces the uninterrupted
// sigma trajectory bit-for-bit only if they are restored along with the
// sigma estimates.
func (n *Network) spectralIterVectors() [][]float64 {
	var out [][]float64
	var walk func(ls []Layer)
	walk = func(ls []Layer) {
		for _, l := range ls {
			switch t := l.(type) {
			case *Dense:
				out = append(out, append([]float64(nil), t.v...))
			case *Conv2D:
				out = append(out, append([]float64(nil), t.vop...))
			case *Residual:
				walk(t.Branch)
				walk(t.Shortcut)
			case *SkipConcat:
				walk(t.Branch)
			}
		}
	}
	walk(n.Layers)
	return out
}

// setSpectralIterVectors restores warm-start vectors captured by
// spectralIterVectors; returns false on a count mismatch.
func (n *Network) setSpectralIterVectors(vs [][]float64) bool {
	i := 0
	okAll := true
	var walk func(ls []Layer)
	walk = func(ls []Layer) {
		for _, l := range ls {
			switch t := l.(type) {
			case *Dense:
				if i >= len(vs) {
					okAll = false
					return
				}
				t.v = append(t.v[:0], vs[i]...)
				i++
			case *Conv2D:
				if i >= len(vs) {
					okAll = false
					return
				}
				t.vop = append(t.vop[:0], vs[i]...)
				i++
			case *Residual:
				walk(t.Branch)
				walk(t.Shortcut)
			case *SkipConcat:
				walk(t.Branch)
			}
		}
	}
	walk(n.Layers)
	return okAll && i == len(vs)
}

// LinearOps returns the LinearOp of every spectral layer in forward
// order, descending into residual branches (shortcut ops are tagged by
// name). Used by diagnostics and tests; the error-flow analysis walks the
// full structure via the errgraph translation instead.
func (n *Network) LinearOps() []LinearOp {
	var out []LinearOp
	var walk func(ls []Layer)
	walk = func(ls []Layer) {
		for _, l := range ls {
			switch t := l.(type) {
			case Spectral:
				out = append(out, t.LinearOp())
			case *Residual:
				walk(t.Branch)
				walk(t.Shortcut)
			case *SkipConcat:
				walk(t.Branch)
			}
		}
	}
	walk(n.Layers)
	return out
}

// NumParams returns the total learnable parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Data)
	}
	return total
}

// FLOPs estimates multiply-accumulate operations for a single sample's
// forward pass (used by the roofline execution model).
func (n *Network) FLOPs() int64 {
	var total int64
	var walk func(ls []Layer)
	walk = func(ls []Layer) {
		for _, l := range ls {
			switch t := l.(type) {
			case *Dense:
				total += 2 * int64(t.In) * int64(t.Out)
			case *Conv2D:
				total += 2 * int64(t.OutC) * int64(t.InC*t.K*t.K) * int64(t.OutH()*t.OutW())
			case *Residual:
				walk(t.Branch)
				walk(t.Shortcut)
			case *SkipConcat:
				walk(t.Branch)
			}
		}
	}
	walk(n.Layers)
	return total
}

// WeightBytes returns the number of bytes the network's weight tensors
// occupy at the given bytes-per-element width (4 for FP32).
func (n *Network) WeightBytes(bytesPerElem int) int64 {
	var total int64
	for _, op := range n.LinearOps() {
		total += int64(len(op.Weights))
	}
	return total * int64(bytesPerElem)
}
