package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/tensor"
)

func TestBatchNormNormalizesTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bn := NewBatchNorm2D("bn", 2, 4, 4)
	x := randBatch(rng, 32, 8)
	for i := range x.Data {
		x.Data[i] = x.Data[i]*3 + 5 // shifted, scaled input
	}
	out := bn.Forward(x, true)
	// Per channel: output mean ~0, var ~1 (gamma=1, beta=0 at init).
	spatial := 16
	for c := 0; c < 2; c++ {
		var mean float64
		n := 0
		for s := 0; s < spatial; s++ {
			for k := 0; k < 8; k++ {
				mean += out.At(c*spatial+s, k)
				n++
			}
		}
		mean /= float64(n)
		if math.Abs(mean) > 1e-10 {
			t.Fatalf("channel %d mean %v", c, mean)
		}
		var varv float64
		for s := 0; s < spatial; s++ {
			for k := 0; k < 8; k++ {
				d := out.At(c*spatial+s, k) - mean
				varv += d * d
			}
		}
		varv /= float64(n)
		if math.Abs(varv-1) > 1e-3 {
			t.Fatalf("channel %d var %v", c, varv)
		}
	}
}

func TestBatchNormGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spec := &Spec{Name: "g", InputDim: 2 * 3 * 3, Layers: []LayerSpec{
		{Type: "conv", Name: "c", C: 2, H: 3, W: 3, OutC: 2, K: 3, Stride: 1, Pad: 1},
		{Type: "bn", Name: "bn", C: 2, H: 3, W: 3},
		{Type: "act", Act: ActTanh},
	}}
	net, err := spec.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	x := randBatch(rng, 18, 4)
	y := randBatch(rng, 18, 4)

	net.ZeroGrad()
	out := net.Forward(x, true)
	_, grad := MSELoss(out, y)
	net.Backward(grad)

	// Numerical check on gamma/beta and conv weights. Running stats also
	// appear in Params but carry no gradient; freeze them by copying.
	loss := func() float64 {
		l, _ := MSELoss(net.Forward(x, true), y) // train mode: batch stats
		return l
	}
	// Snapshot running stats so repeated train-mode forwards don't drift.
	var bn *BatchNorm2D
	for _, l := range net.Layers {
		if b, ok := l.(*BatchNorm2D); ok {
			bn = b
		}
	}
	rm := append([]float64(nil), bn.RunMean.Data...)
	rv := append([]float64(nil), bn.RunVar.Data...)
	restore := func() {
		copy(bn.RunMean.Data, rm)
		copy(bn.RunVar.Data, rv)
	}
	const h = 1e-6
	for _, p := range net.Params() {
		if p == bn.RunMean || p == bn.RunVar {
			continue
		}
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + h
			restore()
			lp := loss()
			p.Data[i] = orig - h
			restore()
			lm := loss()
			p.Data[i] = orig
			restore()
			num := (lp - lm) / (2 * h)
			if math.Abs(p.Grad[i]-num)/(1+math.Abs(num)) > 1e-4 {
				t.Fatalf("param %s[%d]: analytic %v vs numerical %v", p.Name, i, p.Grad[i], num)
			}
		}
	}
}

func TestFoldBatchNormEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := &Spec{Name: "f", InputDim: 3 * 8 * 8, Layers: []LayerSpec{
		{Type: "conv", Name: "c1", C: 3, H: 8, W: 8, OutC: 4, K: 3, Stride: 1, Pad: 1},
		{Type: "bn", Name: "bn1", C: 4, H: 8, W: 8},
		{Type: "act", Act: ActReLU},
		{Type: "residual", Name: "r", Branch: []LayerSpec{
			{Type: "conv", Name: "c2", C: 4, H: 8, W: 8, OutC: 4, K: 3, Stride: 1, Pad: 1},
			{Type: "bn", Name: "bn2", C: 4, H: 8, W: 8},
		}},
		{Type: "gap", Name: "g", C: 4, H: 8, W: 8},
		{Type: "dense", Name: "fc", In: 4, Out: 2},
	}}
	net, err := spec.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	// Run some training steps so BN running stats are non-trivial.
	opt := NewSGD(0.01, 0, 0)
	for i := 0; i < 10; i++ {
		x := randBatch(rng, 192, 8)
		y := randBatch(rng, 2, 8)
		net.ZeroGrad()
		out := net.Forward(x, true)
		_, grad := MSELoss(out, y)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	folded, err := FoldBatchNorm(net)
	if err != nil {
		t.Fatal(err)
	}
	// Folded inference must match BN inference exactly.
	x := randBatch(rng, 192, 4)
	a := net.Forward(x, false)
	b := folded.Forward(x, false)
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > 1e-10 {
			t.Fatalf("folded output differs at %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
	// And the folded network must be analyzable (no BN layers left).
	for _, l := range folded.Layers {
		if _, ok := l.(*BatchNorm2D); ok {
			t.Fatal("fold left a BatchNorm behind")
		}
	}
}

func TestFoldRejectsOrphanBN(t *testing.T) {
	spec := &Spec{Name: "bad", InputDim: 2 * 2 * 2, Layers: []LayerSpec{
		{Type: "bn", Name: "bn", C: 2, H: 2, W: 2},
	}}
	net, err := spec.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FoldBatchNorm(net); err == nil {
		t.Fatal("orphan BN should fail to fold")
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D("mp", 1, 4, 4, 2)
	x := tensor.NewMatrix(16, 1)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	out := p.Forward(x, true)
	want := []float64{5, 7, 13, 15} // max of each 2x2 window
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("maxpool out = %v, want %v", out.Data, want)
		}
	}
	grad := tensor.NewMatrixFrom(4, 1, []float64{1, 2, 3, 4})
	back := p.Backward(grad)
	if back.Data[5] != 1 || back.Data[7] != 2 || back.Data[13] != 3 || back.Data[15] != 4 {
		t.Fatalf("maxpool backward = %v", back.Data)
	}
	var sum float64
	for _, v := range back.Data {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("gradient mass not conserved: %v", sum)
	}
}

func TestMaxPoolLipschitz(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewMaxPool2D("mp", 2, 8, 8, 2)
	for trial := 0; trial < 100; trial++ {
		a := randBatch(rng, 128, 1)
		b := randBatch(rng, 128, 1)
		da := tensor.Vector(p.Forward(a, false).Data).Sub(tensor.Vector(p.Forward(b, false).Data))
		din := tensor.Vector(a.Data).Sub(tensor.Vector(b.Data))
		if da.Norm2() > din.Norm2()*(1+1e-12) {
			t.Fatalf("maxpool violated 1-Lipschitz: %v > %v", da.Norm2(), din.Norm2())
		}
	}
}

func TestBNLipschitzReflectsGamma(t *testing.T) {
	bn := NewBatchNorm2D("bn", 2, 1, 1)
	bn.Gamma.Data[0] = 3
	bn.RunVar.Data[0] = 0.25 // 3/sqrt(0.25) = 6
	bn.Gamma.Data[1] = 1
	if got := bn.Lipschitz(); math.Abs(got-3/math.Sqrt(0.25+bn.Eps)) > 1e-9 {
		t.Fatalf("BN Lipschitz = %v", got)
	}
}
