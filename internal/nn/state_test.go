package nn

import (
	"math"
	"testing"

	"github.com/scidata/errprop/internal/tensor"
)

// stateBatch builds a deterministic regression batch for the state tests.
func stateBatch(seed, in, out, cols int) (*tensor.Matrix, *tensor.Matrix) {
	x := tensor.NewMatrix(in, cols)
	y := tensor.NewMatrix(out, cols)
	s := uint64(seed)*0x9e3779b97f4a7c15 + 1
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(int64(s%2000)-1000) / 500
	}
	for i := range x.Data {
		x.Data[i] = next()
	}
	for i := range y.Data {
		y.Data[i] = next()
	}
	return x, y
}

// runTrajectory trains steps batches and returns the concatenated final
// parameter vector.
func flatParams(net *Network) []float64 {
	var out []float64
	for _, p := range net.Params() {
		out = append(out, p.Data...)
	}
	return out
}

func newStateOptimizer(t *testing.T, kind string) Optimizer {
	t.Helper()
	switch kind {
	case "sgd":
		return NewSGD(0.05, 0.9, 1e-4)
	case "adam":
		return NewAdam(1e-3)
	}
	t.Fatalf("unknown optimizer kind %q", kind)
	return nil
}

// TestTrainerStateResumeBitIdentical is the in-memory half of the
// crash-safe resume guarantee: capture mid-run, keep training the
// original, then restore the snapshot into a freshly built trainer and
// replay — both must land on a bit-identical parameter vector, for
// momentum SGD and Adam, with PSN layers (sigma state) in the mix.
func TestTrainerStateResumeBitIdentical(t *testing.T) {
	for _, kind := range []string{"sgd", "adam"} {
		t.Run(kind, func(t *testing.T) {
			spec := MLPSpec("st-"+kind, []int{6, 12, 12, 3}, ActTanh, true)
			build := func() *Trainer {
				net, err := spec.Build(11)
				if err != nil {
					t.Fatal(err)
				}
				tr, err := NewTrainer(net, newStateOptimizer(t, kind), TrainConfig{Workers: 2, ShardSize: 4})
				if err != nil {
					t.Fatal(err)
				}
				return tr
			}

			const mid, total = 7, 15
			ref := build()
			var snap *TrainerState
			for step := 0; step < total; step++ {
				if step == mid {
					snap = ref.CaptureState()
				}
				x, y := stateBatch(step, 6, 3, 13)
				ref.StepMSE(x, y, 1e-3)
			}
			if snap.Step != mid {
				t.Fatalf("snapshot step %d, want %d", snap.Step, mid)
			}

			res := build()
			if err := res.RestoreState(snap); err != nil {
				t.Fatal(err)
			}
			if res.Steps() != mid {
				t.Fatalf("restored Steps() = %d, want %d", res.Steps(), mid)
			}
			for step := mid; step < total; step++ {
				x, y := stateBatch(step, 6, 3, 13)
				res.StepMSE(x, y, 1e-3)
			}

			a, b := flatParams(ref.Net()), flatParams(res.Net())
			if len(a) != len(b) {
				t.Fatalf("parameter count mismatch %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: resumed trajectory diverged at flat index %d: %v != %v (|diff|=%g)",
						kind, i, b[i], a[i], math.Abs(a[i]-b[i]))
				}
			}
		})
	}
}

// TestTrainerStateRejectsMismatch pins the restore-time validation.
func TestTrainerStateRejectsMismatch(t *testing.T) {
	spec := MLPSpec("stm", []int{4, 8, 2}, ActTanh, true)
	net, err := spec.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(net, NewSGD(0.1, 0.9, 0), TrainConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	x, y := stateBatch(0, 4, 2, 8)
	tr.StepMSE(x, y, 0)
	good := tr.CaptureState()

	cases := map[string]func(*TrainerState){
		"nil-safe":            nil,
		"negative step":       func(st *TrainerState) { st.Step = -1 },
		"param count":         func(st *TrainerState) { st.Params = st.Params[:1] },
		"param length":        func(st *TrainerState) { st.Params[0] = st.Params[0][:2] },
		"sigma count":         func(st *TrainerState) { st.Sigmas = append(st.Sigmas, 1) },
		"iter vector count":   func(st *TrainerState) { st.IterVecs = st.IterVecs[:1] },
		"optimizer kind":      func(st *TrainerState) { st.Opt.Kind = "adam" },
		"optimizer slot len":  func(st *TrainerState) { st.Opt.Slots[0] = st.Opt.Slots[0][:1] },
		"optimizer slot miss": func(st *TrainerState) { st.Opt.Slots = st.Opt.Slots[:1] },
	}
	for name, mutate := range cases {
		st := good
		if mutate != nil {
			cp := *good
			cp.Params = append([][]float64(nil), good.Params...)
			cp.Sigmas = append([]float64(nil), good.Sigmas...)
			cp.IterVecs = append([][]float64(nil), good.IterVecs...)
			cp.Opt.Slots = append([][]float64(nil), good.Opt.Slots...)
			mutate(&cp)
			st = &cp
		} else {
			st = nil
		}
		if err := tr.RestoreState(st); err == nil {
			t.Errorf("%s: invalid state accepted", name)
		}
	}
	// The pristine snapshot still restores.
	if err := tr.RestoreState(good); err != nil {
		t.Fatalf("valid state rejected after failed attempts: %v", err)
	}
}

// TestOptimizerStateNoAliasing: a captured snapshot must not share
// backing arrays with the live optimizer (later Steps would corrupt it).
func TestOptimizerStateNoAliasing(t *testing.T) {
	spec := MLPSpec("al", []int{3, 5, 2}, ActTanh, false)
	net, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(net, NewAdam(1e-2), TrainConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	x, y := stateBatch(1, 3, 2, 6)
	tr.StepMSE(x, y, 0)
	snap := tr.CaptureState()
	before := append([]float64(nil), snap.Opt.Slots[0]...)
	p0 := append([]float64(nil), snap.Params[0]...)
	for i := 0; i < 3; i++ {
		tr.StepMSE(x, y, 0)
	}
	for i := range before {
		if snap.Opt.Slots[0][i] != before[i] {
			t.Fatal("optimizer snapshot aliases live moment buffers")
		}
	}
	for i := range p0 {
		if snap.Params[0][i] != p0[i] {
			t.Fatal("parameter snapshot aliases live parameters")
		}
	}
}
