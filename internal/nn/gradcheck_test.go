package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/tensor"
)

// numericalGrad estimates dL/dp via central differences for every entry
// of every parameter, where loss recomputes the full forward+loss.
func numericalGrad(params []*Param, loss func() float64) map[*Param][]float64 {
	const h = 1e-6
	out := make(map[*Param][]float64, len(params))
	for _, p := range params {
		g := make([]float64, len(p.Data))
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + h
			lp := loss()
			p.Data[i] = orig - h
			lm := loss()
			p.Data[i] = orig
			g[i] = (lp - lm) / (2 * h)
		}
		out[p] = g
	}
	return out
}

// checkGrads runs one forward/backward pass and compares analytic grads
// to numerical ones.
func checkGrads(t *testing.T, net *Network, x, y *tensor.Matrix, tol float64) {
	t.Helper()
	net.ZeroGrad()
	out := net.Forward(x, true)
	_, grad := MSELoss(out, y)
	net.Backward(grad)

	loss := func() float64 {
		l, _ := MSELoss(net.Forward(x, false), y)
		return l
	}
	num := numericalGrad(net.Params(), loss)
	for _, p := range net.Params() {
		ng := num[p]
		for i := range p.Data {
			diff := math.Abs(p.Grad[i] - ng[i])
			scale := 1 + math.Abs(ng[i])
			if diff/scale > tol {
				t.Fatalf("param %s[%d]: analytic %v vs numerical %v", p.Name, i, p.Grad[i], ng[i])
			}
		}
	}
}

func randBatch(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestGradDensePlain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := MLPSpec("g", []int{4, 6, 3}, ActTanh, false)
	net, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	checkGrads(t, net, randBatch(rng, 4, 5), randBatch(rng, 3, 5), 1e-5)
}

func TestGradDensePSN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spec := MLPSpec("g", []int{4, 6, 3}, ActTanh, true)
	net, err := spec.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	// PSN treats sigma as a constant per step (the standard SN
	// approximation), so the W gradient is approximate; alpha and bias
	// gradients are exact. Use a looser tolerance.
	net.RefreshSigmas()
	checkGrads(t, net, randBatch(rng, 4, 5), randBatch(rng, 3, 5), 2e-2)
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, act := range []string{ActTanh, ActReLU, ActLeaky, ActPReLU, ActGELU, ActSigmoid} {
		spec := MLPSpec("g", []int{3, 5, 2}, act, false)
		net, err := spec.Build(3)
		if err != nil {
			t.Fatal(err)
		}
		// Shift inputs away from ReLU kinks to keep numerics clean.
		x := randBatch(rng, 3, 4)
		y := randBatch(rng, 2, 4)
		checkGrads(t, net, x, y, 1e-4)
	}
}

func TestGradConv(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	spec := &Spec{Name: "g", InputDim: 2 * 6 * 6, Layers: []LayerSpec{
		{Type: "conv", Name: "c1", C: 2, H: 6, W: 6, OutC: 3, K: 3, Stride: 1, Pad: 1},
		{Type: "act", Act: ActTanh},
		{Type: "conv", Name: "c2", C: 3, H: 6, W: 6, OutC: 2, K: 3, Stride: 2, Pad: 1},
	}}
	net, err := spec.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	checkGrads(t, net, randBatch(rng, 72, 3), randBatch(rng, 2*3*3, 3), 1e-5)
}

func TestGradPool(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	spec := &Spec{Name: "g", InputDim: 2 * 4 * 4, Layers: []LayerSpec{
		{Type: "conv", Name: "c1", C: 2, H: 4, W: 4, OutC: 2, K: 3, Stride: 1, Pad: 1},
		{Type: "act", Act: ActTanh},
		{Type: "avgpool", Name: "p", C: 2, H: 4, W: 4, K: 2},
		{Type: "gap", Name: "gp", C: 2, H: 2, W: 2},
		{Type: "dense", Name: "fc", In: 2, Out: 2},
	}}
	net, err := spec.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	checkGrads(t, net, randBatch(rng, 32, 3), randBatch(rng, 2, 3), 1e-5)
}

func TestGradResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	spec := &Spec{Name: "g", InputDim: 4, Layers: []LayerSpec{
		{Type: "residual", Name: "r", Branch: []LayerSpec{
			{Type: "dense", Name: "b1", In: 4, Out: 6},
			{Type: "act", Act: ActTanh},
			{Type: "dense", Name: "b2", In: 6, Out: 4},
		}},
		{Type: "act", Act: ActTanh},
		{Type: "dense", Name: "head", In: 4, Out: 2},
	}}
	net, err := spec.Build(6)
	if err != nil {
		t.Fatal(err)
	}
	checkGrads(t, net, randBatch(rng, 4, 4), randBatch(rng, 2, 4), 1e-5)
}

func TestGradResidualProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	spec := &Spec{Name: "g", InputDim: 4, Layers: []LayerSpec{
		{Type: "residual", Name: "r", Branch: []LayerSpec{
			{Type: "dense", Name: "b1", In: 4, Out: 5},
			{Type: "act", Act: ActTanh},
			{Type: "dense", Name: "b2", In: 5, Out: 6},
		}, Shortcut: []LayerSpec{
			{Type: "dense", Name: "proj", In: 4, Out: 6},
		}},
	}}
	net, err := spec.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	checkGrads(t, net, randBatch(rng, 4, 4), randBatch(rng, 6, 4), 1e-5)
}

func TestGradCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	spec := MLPSpec("g", []int{4, 8, 3}, ActReLU, false)
	net, err := spec.Build(8)
	if err != nil {
		t.Fatal(err)
	}
	x := randBatch(rng, 4, 6)
	labels := []int{0, 1, 2, 0, 1, 2}

	net.ZeroGrad()
	out := net.Forward(x, true)
	_, grad := CrossEntropyLoss(out, labels)
	net.Backward(grad)

	loss := func() float64 {
		l, _ := CrossEntropyLoss(net.Forward(x, false), labels)
		return l
	}
	num := numericalGrad(net.Params(), loss)
	for _, p := range net.Params() {
		for i := range p.Data {
			diff := math.Abs(p.Grad[i] - num[p][i])
			if diff/(1+math.Abs(num[p][i])) > 1e-4 {
				t.Fatalf("CE grad %s[%d]: %v vs %v", p.Name, i, p.Grad[i], num[p][i])
			}
		}
	}
}
