package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients untouched (call
	// Network.ZeroGrad before the next accumulation).
	Step(params []*Param)
	// Prealloc eagerly allocates any per-parameter state for params, so
	// that subsequent Steps over the same parameter set are
	// allocation-free (the data-parallel trainer calls this once at
	// construction to keep its steady-state step off the allocator).
	Prealloc(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum and decoupled
// weight decay (the paper's H2Combustion and EuroSAT models train with
// standard SGD; weight decay serves as the "baseline w. weight decay"
// alternative to PSN in Figs. 3-4).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*Param][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, velocity: map[*Param][]float64{}}
}

// Prealloc implements Optimizer: momentum velocity buffers are created
// up front instead of lazily on first Step.
func (s *SGD) Prealloc(params []*Param) {
	if s.Momentum == 0 {
		return
	}
	if s.velocity == nil {
		s.velocity = map[*Param][]float64{}
	}
	for _, p := range params {
		if s.velocity[p] == nil {
			s.velocity[p] = make([]float64, len(p.Data))
		}
	}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum == 0 {
			for i := range p.Data {
				g := p.Grad[i] + s.WeightDecay*p.Data[i]
				p.Data[i] -= s.LR * g
			}
			continue
		}
		v := s.velocity[p]
		if v == nil {
			v = make([]float64, len(p.Data))
			s.velocity[p] = v
		}
		for i := range p.Data {
			g := p.Grad[i] + s.WeightDecay*p.Data[i]
			v[i] = s.Momentum*v[i] + g
			p.Data[i] -= s.LR * v[i]
		}
	}
}

// Adam is the Adam optimizer (the paper's BorghesiFlame model trains with
// Adam).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64
	t                     int
	m, v                  map[*Param][]float64
}

// NewAdam returns Adam with the conventional defaults for unset betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param][]float64{}, v: map[*Param][]float64{}}
}

// Prealloc implements Optimizer: first/second-moment buffers are created
// up front instead of lazily on first Step.
func (a *Adam) Prealloc(params []*Param) {
	if a.m == nil {
		a.m = map[*Param][]float64{}
	}
	if a.v == nil {
		a.v = map[*Param][]float64{}
	}
	for _, p := range params {
		if a.m[p] == nil {
			a.m[p] = make([]float64, len(p.Data))
			a.v[p] = make([]float64, len(p.Data))
		}
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = make([]float64, len(p.Data))
			v = make([]float64, len(p.Data))
			a.m[p] = m
			a.v[p] = v
		}
		for i := range p.Data {
			g := p.Grad[i] + a.WeightDecay*p.Data[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}
