package nn

import (
	"fmt"
	"math"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients untouched (call
	// Network.ZeroGrad before the next accumulation).
	Step(params []*Param)
	// Prealloc eagerly allocates any per-parameter state for params, so
	// that subsequent Steps over the same parameter set are
	// allocation-free (the data-parallel trainer calls this once at
	// construction to keep its steady-state step off the allocator).
	Prealloc(params []*Param)
	// CaptureState snapshots the optimizer's internal state (moment
	// buffers, step count) relative to params, deep-copied so the
	// snapshot stays valid across later Steps. Together with the
	// parameter values it is everything a checkpoint needs for a resumed
	// run to continue bit-identically.
	CaptureState(params []*Param) OptimizerState
	// RestoreState replaces the optimizer's internal state with a
	// snapshot captured against a parameter set of the same shape. It
	// rejects snapshots from a different optimizer kind or geometry.
	RestoreState(st OptimizerState, params []*Param) error
}

// OptimizerState is a serializable snapshot of an optimizer's mutable
// state. Slots holds per-parameter moment buffers in slot-major order:
// for an optimizer with k slots over n parameters, Slots[s*n+i] is slot
// s of parameter i (SGD-momentum: k=1 velocity; Adam: k=2, first then
// second moments; momentum-free SGD: k=0).
type OptimizerState struct {
	Kind  string
	Step  int64
	Slots [][]float64
}

// checkSlots validates that st carries exactly k slots per parameter,
// each matching its parameter's length.
func (st *OptimizerState) checkSlots(kind string, k int, params []*Param) error {
	if st.Kind != kind {
		return fmt.Errorf("nn: optimizer state kind %q cannot restore into %q", st.Kind, kind)
	}
	if len(st.Slots) != k*len(params) {
		return fmt.Errorf("nn: %s state has %d slots, want %d (%d per parameter)", kind, len(st.Slots), k*len(params), k)
	}
	for s := 0; s < k; s++ {
		for i, p := range params {
			if got := len(st.Slots[s*len(params)+i]); got != len(p.Data) {
				return fmt.Errorf("nn: %s state slot %d for parameter %s has %d values, want %d", kind, s, p.Name, got, len(p.Data))
			}
		}
	}
	return nil
}

// SGD is stochastic gradient descent with optional momentum and decoupled
// weight decay (the paper's H2Combustion and EuroSAT models train with
// standard SGD; weight decay serves as the "baseline w. weight decay"
// alternative to PSN in Figs. 3-4).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*Param][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, velocity: map[*Param][]float64{}}
}

// Prealloc implements Optimizer: momentum velocity buffers are created
// up front instead of lazily on first Step.
func (s *SGD) Prealloc(params []*Param) {
	if s.Momentum == 0 {
		return
	}
	if s.velocity == nil {
		s.velocity = map[*Param][]float64{}
	}
	for _, p := range params {
		if s.velocity[p] == nil {
			s.velocity[p] = make([]float64, len(p.Data))
		}
	}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum == 0 {
			for i := range p.Data {
				g := p.Grad[i] + s.WeightDecay*p.Data[i]
				p.Data[i] -= s.LR * g
			}
			continue
		}
		v := s.velocity[p]
		if v == nil {
			v = make([]float64, len(p.Data))
			s.velocity[p] = v
		}
		for i := range p.Data {
			g := p.Grad[i] + s.WeightDecay*p.Data[i]
			v[i] = s.Momentum*v[i] + g
			p.Data[i] -= s.LR * v[i]
		}
	}
}

// CaptureState implements Optimizer: one velocity slot per parameter
// when momentum is in play, none otherwise.
func (s *SGD) CaptureState(params []*Param) OptimizerState {
	st := OptimizerState{Kind: "sgd"}
	if s.Momentum == 0 {
		return st
	}
	st.Slots = make([][]float64, 0, len(params))
	for _, p := range params {
		v := s.velocity[p]
		cp := make([]float64, len(p.Data))
		copy(cp, v) // nil v (no Step yet) snapshots as zeros
		st.Slots = append(st.Slots, cp)
	}
	return st
}

// RestoreState implements Optimizer.
func (s *SGD) RestoreState(st OptimizerState, params []*Param) error {
	k := 1
	if s.Momentum == 0 {
		k = 0
	}
	if err := st.checkSlots("sgd", k, params); err != nil {
		return err
	}
	if k == 0 {
		return nil
	}
	if s.velocity == nil {
		s.velocity = map[*Param][]float64{}
	}
	for i, p := range params {
		v := s.velocity[p]
		if v == nil {
			v = make([]float64, len(p.Data))
			s.velocity[p] = v
		}
		copy(v, st.Slots[i])
	}
	return nil
}

// Adam is the Adam optimizer (the paper's BorghesiFlame model trains with
// Adam).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64
	t                     int
	m, v                  map[*Param][]float64
}

// NewAdam returns Adam with the conventional defaults for unset betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param][]float64{}, v: map[*Param][]float64{}}
}

// Prealloc implements Optimizer: first/second-moment buffers are created
// up front instead of lazily on first Step.
func (a *Adam) Prealloc(params []*Param) {
	if a.m == nil {
		a.m = map[*Param][]float64{}
	}
	if a.v == nil {
		a.v = map[*Param][]float64{}
	}
	for _, p := range params {
		if a.m[p] == nil {
			a.m[p] = make([]float64, len(p.Data))
			a.v[p] = make([]float64, len(p.Data))
		}
	}
}

// CaptureState implements Optimizer: the bias-correction step count
// plus first- and second-moment slots for every parameter.
func (a *Adam) CaptureState(params []*Param) OptimizerState {
	st := OptimizerState{Kind: "adam", Step: int64(a.t),
		Slots: make([][]float64, 0, 2*len(params))}
	for _, p := range params {
		cp := make([]float64, len(p.Data))
		copy(cp, a.m[p])
		st.Slots = append(st.Slots, cp)
	}
	for _, p := range params {
		cp := make([]float64, len(p.Data))
		copy(cp, a.v[p])
		st.Slots = append(st.Slots, cp)
	}
	return st
}

// RestoreState implements Optimizer.
func (a *Adam) RestoreState(st OptimizerState, params []*Param) error {
	if err := st.checkSlots("adam", 2, params); err != nil {
		return err
	}
	if st.Step < 0 {
		return fmt.Errorf("nn: adam state has negative step count %d", st.Step)
	}
	a.t = int(st.Step)
	a.Prealloc(params)
	for i, p := range params {
		copy(a.m[p], st.Slots[i])
		copy(a.v[p], st.Slots[len(params)+i])
	}
	return nil
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = make([]float64, len(p.Data))
			v = make([]float64, len(p.Data))
			a.m[p] = m
			a.v[p] = v
		}
		for i := range p.Data {
			g := p.Grad[i] + a.WeightDecay*p.Data[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}
