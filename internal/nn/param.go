// Package nn is a from-scratch neural-network library sufficient to
// reproduce the paper's workloads: dense and convolutional layers with
// reverse-mode gradients, Tanh/ReLU/LeakyReLU/PReLU/GELU activations,
// residual blocks, SGD and Adam optimizers, MSE and cross-entropy losses,
// and — the piece the paper contributes training-side — *parameterized
// spectral normalization* (PSN), which reparameterizes each linear layer
// as W_psn = alpha * W / sigma(W) so the layer's spectral norm is the
// learnable alpha (Eq. 6), regularized by a squared-spectral-norm penalty.
//
// Batches are column-major: a Matrix of shape (features, batchSize).
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/scidata/errprop/internal/tensor"
)

// Param is a learnable tensor with its gradient accumulator.
type Param struct {
	Name string
	Data []float64
	Grad []float64
}

// NewParam allocates a named parameter of length n.
func NewParam(name string, n int) *Param {
	return &Param{Name: name, Data: make([]float64, n), Grad: make([]float64, n)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// CopyDataFrom overwrites p's values with src's (used to broadcast
// master weights to data-parallel replicas). Panics on length mismatch.
func (p *Param) CopyDataFrom(src *Param) {
	if len(src.Data) != len(p.Data) {
		panic(fmt.Sprintf("nn: CopyDataFrom %s length mismatch %d vs %d", p.Name, len(src.Data), len(p.Data)))
	}
	copy(p.Data, src.Data)
}

// CopyGradTo copies p's gradient accumulator into dst and returns the
// number of elements written; dst must be at least len(p.Grad) long.
// Data-parallel shards use this to export their local accumulation into
// a flat reduction buffer.
func (p *Param) CopyGradTo(dst []float64) int {
	return copy(dst[:len(p.Grad)], p.Grad)
}

// AccumGradFrom adds src elementwise into p's gradient accumulator
// (the inverse of CopyGradTo: scattering a reduced flat buffer back onto
// parameters) and returns the number of elements consumed.
func (p *Param) AccumGradFrom(src []float64) int {
	g := p.Grad
	for i := range g {
		g[i] += src[i]
	}
	return len(g)
}

// initKaiming fills w (out x in fan) with Kaiming-uniform values, the
// standard initialization for ReLU-family networks.
func initKaiming(w []float64, fanIn int, rng *rand.Rand) {
	bound := math.Sqrt(6.0 / float64(fanIn))
	for i := range w {
		w[i] = (rng.Float64()*2 - 1) * bound
	}
}

// initXavier fills w with Xavier-uniform values, appropriate for Tanh.
func initXavier(w []float64, fanIn, fanOut int, rng *rand.Rand) {
	bound := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range w {
		w[i] = (rng.Float64()*2 - 1) * bound
	}
}

// Layer is one differentiable stage of a network.
type Layer interface {
	// Name identifies the layer for diagnostics and serialization.
	Name() string
	// Forward maps a (features x batch) input to the layer output.
	// When train is true the layer caches what Backward needs.
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	// Backward consumes dL/d(output) and returns dL/d(input),
	// accumulating parameter gradients along the way. It must be called
	// after a Forward with train=true.
	Backward(grad *tensor.Matrix) *tensor.Matrix
	// Params returns the layer's learnable parameters (nil if none).
	Params() []*Param
}

// LinearOp summarizes a layer's linear operator for the error-flow
// analysis in internal/core: the flattened weights (for Table I step
// sizes), the operator spectral norm, flattened dimensions, and the two
// gain factors that generalize the paper's dense-layer quantization terms
// to convolutions (for a dense layer AddGain = sqrt(n_out) and
// InflGain = sqrt(min(n_in, n_out)), recovering Inequality (3) exactly).
type LinearOp struct {
	LayerName string
	Weights   []float64
	Sigma     float64
	InDim     int
	OutDim    int
	// WRows x WCols is the shape of Weights as a matrix (dense: Out x In;
	// conv: OutC x InC*K*K) — the grouping axes for grouped quantization.
	WRows, WCols int
	// AddGain g enters the additive quantization term q*g/(2*sqrt(3))*||h||.
	AddGain float64
	// InflGain enters the spectral inflation sigma~ <= sigma + q*InflGain/sqrt(3).
	InflGain float64
	// RowNorms are the L2 norms of the operator's output rows, used for
	// per-feature QoI bounds (only populated for the final dense layer).
	RowNorms []float64
}

// Spectral is implemented by layers that own a linear operator and can
// report it for analysis. RefreshSigma recomputes the operator norm (used
// after weight mutation, e.g. quantization).
type Spectral interface {
	LinearOp() LinearOp
	RefreshSigma()
}

// Regularized is implemented by layers contributing a regularization term
// to the loss (the PSN squared-spectral-norm penalty). AddRegGrad adds
// lambda-scaled gradients to the layer's parameters and returns the
// penalty value.
type Regularized interface {
	AddRegGrad(lambda float64) float64
}
