package nn

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/scidata/errprop/internal/tensor"
)

// Trainer is a deterministic data-parallel training engine. Each
// optimizer step shards the minibatch's columns into fixed-size
// micro-shards, computes every shard's forward/backward pass on a worker
// pool of Network.Clone replicas, and reduces the per-shard parameter
// gradients in a fixed binary-tree order before applying one optimizer
// step on the master network.
//
// Determinism invariant: the result of Step is a pure function of
// (master state, batch, ShardSize) — it does NOT depend on Workers or on
// the goroutine schedule. Three properties make that hold:
//
//  1. Shard boundaries are fixed by the batch width and ShardSize alone;
//     workers pull shard indices from a counter, so the assignment of
//     shards to replicas varies run to run, but every shard's
//     computation depends only on the broadcast master state and the
//     shard's columns (all layers map columns independently — which is
//     why BatchNorm, whose train-mode statistics couple the columns of
//     whatever sub-batch it sees, is rejected at construction).
//  2. PSN spectral-norm estimates advance on the master (one warm-start
//     power-iteration step per Step, the serial cadence) and are
//     broadcast; replica-side stepping is frozen, so effective weights
//     cannot depend on which shards a replica happened to process.
//  3. Per-shard gradients land in per-shard buffers, reduced pairwise in
//     a fixed binary tree over the shard index (0+1, 2+3, ... then
//     recursively), an association that never changes with Workers.
//
// Consequently Workers=1 and Workers=N produce bit-identical weight
// trajectories, and CI can assert exact equality — the determinism
// invariant errpropvet's analyzers police elsewhere in the repo.
//
// A Trainer is not safe for concurrent use; Step must not overlap with
// other mutation of the master network.
type Trainer struct {
	net *Network
	opt Optimizer
	cfg TrainConfig

	params   []*Param
	gradSize int

	replicas []*Network
	repPool  []*tensor.MatrixPool // per-worker scratch for shard inputs

	shardGrads [][]float64
	shardLoss  []float64

	steps int64 // completed optimizer steps (survives checkpoint round-trips)
}

// TrainConfig configures a Trainer.
type TrainConfig struct {
	// Workers is the number of goroutines (and network replicas)
	// computing shard gradients; <= 0 means GOMAXPROCS. Changing Workers
	// never changes the training result, only its wall-clock time.
	Workers int
	// ShardSize is the number of batch columns per micro-shard
	// (default 32). It defines the gradient reduction tree, so changing
	// it changes results at the floating-point-association level;
	// changing Workers does not.
	ShardSize int
}

// DefaultShardSize is the micro-shard width used when
// TrainConfig.ShardSize is unset: small enough to give an 8-worker pool
// useful parallelism at the paper's batch sizes (256), large enough that
// per-shard dispatch overhead stays negligible.
const DefaultShardSize = 32

func (c *TrainConfig) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ShardSize <= 0 {
		c.ShardSize = DefaultShardSize
	}
}

// LossFn computes a shard's loss contribution and dL/d(out). out holds
// the network outputs for columns [lo, hi) of the current batch; total
// is the full batch width, which the implementation must use for
// normalization so that shard gradients compose to the full-batch
// gradient (see MSEShard / CrossEntropyShard).
type LossFn func(out *tensor.Matrix, lo, hi, total int) (loss float64, grad *tensor.Matrix)

// NewTrainer builds a data-parallel trainer for net, stepping it with
// opt. The network must carry its Spec (replicas are built by Clone) and
// must not contain BatchNorm layers, whose train-mode batch statistics
// are incompatible with shard-order-independent training.
func NewTrainer(net *Network, opt Optimizer, cfg TrainConfig) (*Trainer, error) {
	if opt == nil {
		return nil, fmt.Errorf("nn: trainer needs an optimizer")
	}
	cfg.fillDefaults()
	var bn bool
	net.forEachLayer(func(l Layer) {
		if _, ok := l.(*BatchNorm2D); ok {
			bn = true
		}
	})
	if bn {
		return nil, fmt.Errorf("nn: trainer does not support BatchNorm layers (train-mode batch statistics depend on the shard decomposition); fold or remove them first")
	}
	t := &Trainer{net: net, opt: opt, cfg: cfg, params: net.Params(), gradSize: net.GradSize()}
	t.replicas = make([]*Network, cfg.Workers)
	t.repPool = make([]*tensor.MatrixPool, cfg.Workers)
	for i := range t.replicas {
		c, err := net.Clone()
		if err != nil {
			return nil, fmt.Errorf("nn: trainer replica %d: %w", i, err)
		}
		c.SetSigmaStepping(false)
		t.replicas[i] = c
		t.repPool[i] = &tensor.MatrixPool{}
	}
	opt.Prealloc(t.params)
	return t, nil
}

// Workers reports the effective worker count.
func (t *Trainer) Workers() int { return t.cfg.Workers }

// Net returns the master network the trainer updates.
func (t *Trainer) Net() *Network { return t.net }

// Steps reports how many optimizer steps the trainer has applied,
// including steps replayed into it by RestoreState.
func (t *Trainer) Steps() int64 { return t.steps }

// TrainerState is a deep-copied snapshot of everything Step depends on:
// parameter values, PSN spectral-norm estimates, optimizer moments, and
// the step counter. Capturing between Steps and later restoring into an
// identically-constructed trainer resumes the weight trajectory
// bit-identically — the property internal/checkpoint serializes and the
// kill-and-resume tests assert with exact equality.
type TrainerState struct {
	Step   int64
	Params [][]float64
	Sigmas []float64
	// IterVecs are the spectral layers' power-iteration warm-start
	// vectors. Sigma estimates alone are not enough for exact resume:
	// the next StepSigmas warm-starts the iteration from these vectors,
	// so omitting them would fork the sigma trajectory at the first
	// post-resume step.
	IterVecs [][]float64
	Opt      OptimizerState
}

// CaptureState snapshots the trainer. Must not be called concurrently
// with Step.
func (t *Trainer) CaptureState() *TrainerState {
	st := &TrainerState{
		Step:     t.steps,
		Params:   make([][]float64, len(t.params)),
		Sigmas:   t.net.spectralSigmas(),
		IterVecs: t.net.spectralIterVectors(),
		Opt:      t.opt.CaptureState(t.params),
	}
	for i, p := range t.params {
		cp := make([]float64, len(p.Data))
		copy(cp, p.Data)
		st.Params[i] = cp
	}
	return st
}

// RestoreState loads a snapshot captured by CaptureState on a trainer
// built over the same spec and optimizer kind. On success the next Step
// continues exactly as it would have after the capturing run's last
// Step; on geometry or kind mismatch the trainer is left unmodified.
func (t *Trainer) RestoreState(st *TrainerState) error {
	if st == nil {
		return fmt.Errorf("nn: nil trainer state")
	}
	if st.Step < 0 {
		return fmt.Errorf("nn: trainer state has negative step count %d", st.Step)
	}
	if len(st.Params) != len(t.params) {
		return fmt.Errorf("nn: trainer state has %d parameters, network has %d", len(st.Params), len(t.params))
	}
	for i, p := range t.params {
		if len(st.Params[i]) != len(p.Data) {
			return fmt.Errorf("nn: trainer state parameter %d has %d values, %s has %d", i, len(st.Params[i]), p.Name, len(p.Data))
		}
	}
	if len(st.Sigmas) != len(t.net.spectralSigmas()) {
		return fmt.Errorf("nn: trainer state has %d sigma estimates, network has %d", len(st.Sigmas), len(t.net.spectralSigmas()))
	}
	if len(st.IterVecs) != len(st.Sigmas) {
		return fmt.Errorf("nn: trainer state has %d iteration vectors for %d sigma estimates", len(st.IterVecs), len(st.Sigmas))
	}
	if err := t.opt.RestoreState(st.Opt, t.params); err != nil {
		return err
	}
	for i, p := range t.params {
		copy(p.Data, st.Params[i])
	}
	if !t.net.setSpectralSigmas(st.Sigmas) {
		return fmt.Errorf("nn: trainer state sigma estimates do not match the network's PSN layers")
	}
	if !t.net.setSpectralIterVectors(st.IterVecs) {
		return fmt.Errorf("nn: trainer state iteration vectors do not match the network's spectral layers")
	}
	t.steps = st.Step
	return nil
}

// ensureShards grows the per-shard gradient and loss buffers to n.
func (t *Trainer) ensureShards(n int) {
	for len(t.shardGrads) < n {
		t.shardGrads = append(t.shardGrads, make([]float64, t.gradSize))
	}
	if cap(t.shardLoss) < n {
		t.shardLoss = make([]float64, n)
	}
	t.shardLoss = t.shardLoss[:n]
}

// Step runs one data-parallel optimizer step on the batch x (features x
// batch columns) under the shard loss function, adding the PSN spectral
// penalty when lambda > 0. It returns the batch training loss (including
// the penalty term).
//
//errprop:deterministic same inputs + same seed give a bit-identical step on any worker count
func (t *Trainer) Step(x *tensor.Matrix, loss LossFn, lambda float64) float64 {
	if x.Cols == 0 {
		return 0
	}
	batch := x.Cols
	shard := t.cfg.ShardSize
	nShards := (batch + shard - 1) / shard
	t.ensureShards(nShards)

	// Advance PSN sigma estimates once per step on the master, then
	// broadcast parameters + estimates to every replica.
	t.net.StepSigmas()
	for _, rep := range t.replicas {
		if err := rep.SyncFrom(t.net); err != nil {
			panic(fmt.Sprintf("nn: trainer broadcast: %v", err))
		}
	}

	// Fan shards out to workers. The counter-based pull means the
	// shard->worker assignment is schedule-dependent, but nothing
	// downstream depends on it: shard s's gradient lands in
	// shardGrads[s] regardless of who computed it.
	workers := t.cfg.Workers
	if workers > nShards {
		workers = nShards
	}
	var next atomic.Int64
	run := func(w int) {
		rep, pool := t.replicas[w], t.repPool[w]
		xs := pool.Get(x.Rows, shard)
		for {
			s := int(next.Add(1)) - 1
			if s >= nShards {
				break
			}
			lo := s * shard
			hi := lo + shard
			if hi > batch {
				hi = batch
			}
			xs = x.ColRangeInto(lo, hi, xs)
			rep.ZeroGrad()
			out := rep.Forward(xs, true)
			l, g := loss(out, lo, hi, batch)
			rep.Backward(g)
			rep.CopyGradsTo(t.shardGrads[s])
			t.shardLoss[s] = l
		}
		pool.Put(xs)
	}
	if workers == 1 {
		run(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				run(w)
			}(w)
		}
		wg.Wait()
	}

	// Fixed binary-tree reduction over the shard index: pairwise
	// combine (0,1), (2,3), ... then recurse on the survivors. The
	// association depends only on nShards.
	for stride := 1; stride < nShards; stride *= 2 {
		for i := 0; i+stride < nShards; i += 2 * stride {
			a, b := t.shardGrads[i], t.shardGrads[i+stride]
			for k := range a {
				a[k] += b[k]
			}
			t.shardLoss[i] += t.shardLoss[i+stride]
		}
	}

	t.net.ZeroGrad()
	t.net.AccumGradsFrom(t.shardGrads[0])
	total := t.shardLoss[0]
	if lambda > 0 {
		total += t.net.AddRegGrad(lambda)
	}
	t.opt.Step(t.params)
	t.steps++
	return total
}

// StepMSE is Step with the mean-squared-error loss against the
// full-batch target matrix y.
func (t *Trainer) StepMSE(x, y *tensor.Matrix, lambda float64) float64 {
	return t.Step(x, MSEShard(y), lambda)
}

// StepCrossEntropy is Step with the softmax cross-entropy loss against
// the full-batch label slice.
func (t *Trainer) StepCrossEntropy(x *tensor.Matrix, labels []int, lambda float64) float64 {
	return t.Step(x, CrossEntropyShard(labels), lambda)
}
