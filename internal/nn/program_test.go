package nn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// TestProgramRoundTrip pins the compile/bind split: for every golden
// architecture the program must survive EncodeBinary/DecodeProgram byte
// for byte, and an engine bound from the decoded program must replay the
// exact op schedule — same program dump, bit-identical Forward — as one
// compiled directly from the network.
func TestProgramRoundTrip(t *testing.T) {
	for _, spec := range goldenInferSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			net := buildGolden(t, spec, 7)
			p, err := CompileProgram(net)
			if err != nil {
				t.Fatalf("CompileProgram: %v", err)
			}
			raw := p.EncodeBinary()
			p2, err := DecodeProgram(raw)
			if err != nil {
				t.Fatalf("DecodeProgram: %v", err)
			}
			if !bytes.Equal(p2.EncodeBinary(), raw) {
				t.Fatal("decode -> re-encode is not byte-identical")
			}

			direct, err := CompileInferenceSharded(net, 8, 2)
			if err != nil {
				t.Fatalf("CompileInferenceSharded: %v", err)
			}
			bound, err := p2.Bind(net, 8, 2)
			if err != nil {
				t.Fatalf("Bind: %v", err)
			}
			if got, want := strings.Join(bound.Program(), "\n"), strings.Join(direct.Program(), "\n"); got != want {
				t.Fatalf("bound program dump differs from direct compile:\n%s\nvs\n%s", got, want)
			}
			rng := rand.New(rand.NewSource(23))
			for _, batch := range []int{1, 5, 8} {
				x := randInferBatch(rng, spec.InputDim, batch)
				want := net.Forward(x, false)
				got := bound.Forward(x)
				if !bitEqual(got.Data, want.Data) {
					t.Fatalf("batch %d: bound-engine output not bit-identical", batch)
				}
			}
		})
	}
}

// TestProgramBindRejectsMismatchedNetwork: binding a program against a
// structurally different network must fail typed, never run.
func TestProgramBindRejectsMismatchedNetwork(t *testing.T) {
	mlp := buildGolden(t, MLPSpec("a", []int{9, 16, 12, 9}, ActTanh, true), 7)
	p, err := CompileProgram(mlp)
	if err != nil {
		t.Fatalf("CompileProgram: %v", err)
	}
	other := buildGolden(t, MLPSpec("b", []int{9, 12, 9}, ActTanh, false), 7)
	if _, err := p.Bind(other, 8, 1); err == nil {
		t.Fatal("binding against a structurally different network must fail")
	}
	wrongDim := buildGolden(t, MLPSpec("c", []int{6, 10, 4}, ActSigmoid, false), 7)
	if _, err := p.Bind(wrongDim, 8, 1); err == nil {
		t.Fatal("binding against a different input width must fail")
	}
}

// TestDecodeProgramRejectsDamage: truncation, trailing bytes, and
// unknown kinds are typed decode failures.
func TestDecodeProgramRejectsDamage(t *testing.T) {
	net := buildGolden(t, MLPSpec("d", []int{4, 6, 2}, ActReLU, false), 3)
	p, err := CompileProgram(net)
	if err != nil {
		t.Fatalf("CompileProgram: %v", err)
	}
	raw := p.EncodeBinary()
	if _, err := DecodeProgram(raw[:len(raw)-3]); err == nil {
		t.Fatal("truncated program must not decode")
	}
	if _, err := DecodeProgram(append(append([]byte{}, raw...), 0)); err == nil {
		t.Fatal("trailing bytes must not decode")
	}
	mangled := append([]byte{}, raw...)
	// First op's kind byte sits right after the 4 header words, the slot
	// table, and the op count.
	kindOff := 4*4 + 4*len(p.SlotRows) + 4
	mangled[kindOff] = 0xee
	if _, err := DecodeProgram(mangled); err == nil {
		t.Fatal("unknown op kind must not decode")
	}
}
