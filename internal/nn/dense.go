package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/scidata/errprop/internal/tensor"
)

// Dense is a fully connected layer z = W h + b, optionally reparameterized
// with the paper's parameterized spectral normalization (PSN, Eq. 6):
//
//	W_psn = alpha * W / sigma(W)
//
// so the layer's spectral norm is exactly |alpha|, a learnable scalar.
// sigma(W) is tracked by warm-started power iteration during training, as
// in Miyato et al.'s spectral normalization; its gradient is treated as a
// constant per step (the standard SN approximation).
type Dense struct {
	In, Out int
	W       *Param // Out x In, row-major
	B       *Param // Out
	PSN     bool
	Alpha   *Param // PSN scale (nil unless PSN)

	// Power-iteration state for sigma(W). sigmaOK marks the estimate
	// fresh; plain (non-PSN) layers compute it lazily on first use so
	// that building large models for throughput simulation stays cheap.
	// sigmaFrozen disables the per-forward warm-start step (data-parallel
	// replicas receive their estimates from the master instead; see
	// Network.SetSigmaStepping).
	u, v        tensor.Vector
	sigmaRaw    float64
	sigmaOK     bool
	sigmaFrozen bool

	// Cached state for backward. inX/effW point at the scratch matrices
	// below in the train path; the scratch is reused across steps so
	// steady-state training allocates nothing here.
	inX  *tensor.Matrix
	effW *tensor.Matrix

	inXBuf, effWBuf, outBuf, dEffBuf, dXBuf *tensor.Matrix

	name string
}

// NewDense builds a dense layer. act hints the initialization scheme
// (Xavier for tanh/sigmoid, Kaiming otherwise). With psn=true the layer is
// PSN-reparameterized with alpha initialized to the post-init sigma(W), so
// reparameterization starts as an identity transform.
func NewDense(name string, in, out int, act string, psn bool, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, PSN: psn, name: name}
	d.W = NewParam(name+".W", out*in)
	d.B = NewParam(name+".B", out)
	switch act {
	case ActTanh, ActSigmoid:
		initXavier(d.W.Data, in, out, rng)
	default:
		initKaiming(d.W.Data, in, rng)
	}
	if psn {
		d.RefreshSigma()
		d.Alpha = NewParam(name+".alpha", 1)
		d.Alpha.Data[0] = d.sigmaRaw
	}
	return d
}

// NewDenseFromWeights wraps explicit weights (row-major out x in) and bias
// into a plain (non-PSN) dense layer; used by the quantizer to build
// inference copies.
func NewDenseFromWeights(name string, in, out int, w, b []float64) *Dense {
	if len(w) != out*in || len(b) != out {
		panic(fmt.Sprintf("nn: NewDenseFromWeights shape mismatch %dx%d vs %d,%d", out, in, len(w), len(b)))
	}
	d := &Dense{In: in, Out: out, name: name}
	d.W = &Param{Name: name + ".W", Data: w, Grad: make([]float64, len(w))}
	d.B = &Param{Name: name + ".B", Data: b, Grad: make([]float64, len(b))}
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// rawMatrix views W as a tensor.Matrix (shared storage).
func (d *Dense) rawMatrix() *tensor.Matrix { return tensor.NewMatrixFrom(d.Out, d.In, d.W.Data) }

// RefreshSigma recomputes sigma(W) with a full power iteration.
func (d *Dense) RefreshSigma() {
	sigma, u, v := tensor.SpectralNormVectors(d.rawMatrix(), 100, d.v)
	d.sigmaRaw, d.u, d.v = sigma, u, v
	d.sigmaOK = true
}

// ensureSigma computes sigma(W) if no fresh estimate exists.
func (d *Dense) ensureSigma() {
	if !d.sigmaOK {
		d.RefreshSigma()
	}
}

// stepSigma advances the warm-started power iteration a few steps; cheap
// enough to run every training forward.
func (d *Dense) stepSigma() {
	sigma, u, v := tensor.SpectralNormVectors(d.rawMatrix(), 3, d.v)
	d.sigmaRaw, d.u, d.v = sigma, u, v
	d.sigmaOK = true
}

// EffectiveMatrix returns the weight matrix actually applied to inputs:
// W for a plain layer, alpha*W/sigma(W) under PSN. The caller must not
// mutate the result when PSN is off (shared storage).
func (d *Dense) EffectiveMatrix() *tensor.Matrix {
	if !d.PSN {
		return d.rawMatrix()
	}
	d.ensureSigma()
	if d.sigmaRaw == 0 {
		return d.rawMatrix().Clone() // degenerate zero matrix
	}
	s := d.Alpha.Data[0] / d.sigmaRaw
	out := tensor.NewMatrix(d.Out, d.In)
	for i, w := range d.W.Data {
		out.Data[i] = w * s
	}
	return out
}

// effectiveMatrixInto is EffectiveMatrix writing into a reusable scratch
// buffer (train path). Non-PSN layers return the shared raw view.
func (d *Dense) effectiveMatrixInto(dst *tensor.Matrix) *tensor.Matrix {
	if !d.PSN {
		return d.rawMatrix()
	}
	d.ensureSigma()
	if d.sigmaRaw == 0 {
		return dst.CopyFrom(d.rawMatrix()) // degenerate zero matrix
	}
	s := d.Alpha.Data[0] / d.sigmaRaw
	dst = tensor.EnsureMatrix(dst, d.Out, d.In)
	for i, w := range d.W.Data {
		dst.Data[i] = w * s
	}
	return dst
}

// Forward implements Layer. The train path reuses layer-owned scratch
// for the cached input, the effective matrix, and the output, so a
// steady-state training step is allocation-free here; the returned
// matrix is only valid until the next train-mode Forward on this layer.
func (d *Dense) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Rows != d.In {
		panic(fmt.Sprintf("nn: %s input rows %d != in %d", d.name, x.Rows, d.In))
	}
	var w, out *tensor.Matrix
	if train {
		if d.PSN && !d.sigmaFrozen {
			d.stepSigma()
		}
		d.inXBuf = d.inXBuf.CopyFrom(x)
		d.inX = d.inXBuf
		if d.PSN {
			d.effWBuf = d.effectiveMatrixInto(d.effWBuf)
			w = d.effWBuf
		} else {
			w = d.rawMatrix()
		}
		d.effW = w
		d.outBuf = w.MulInto(x, d.outBuf)
		out = d.outBuf
	} else {
		w = d.EffectiveMatrix()
		out = w.Mul(x)
	}
	for r := 0; r < out.Rows; r++ {
		b := d.B.Data[r]
		row := out.Data[r*out.Cols : (r+1)*out.Cols]
		for c := range row {
			row[c] += b
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if d.inX == nil {
		panic("nn: dense Backward before Forward(train)")
	}
	// Bias gradient: row sums.
	for r := 0; r < grad.Rows; r++ {
		var s float64
		row := grad.Data[r*grad.Cols : (r+1)*grad.Cols]
		for _, g := range row {
			s += g
		}
		d.B.Grad[r] += s
	}
	d.dEffBuf = grad.MulBTInto(d.inX, d.dEffBuf) // dL/dW_eff
	dEff := d.dEffBuf
	if !d.PSN {
		for i := range d.W.Grad {
			d.W.Grad[i] += dEff.Data[i]
		}
	} else {
		// W_eff = alpha/sigma * W with sigma detached:
		// dW = alpha/sigma * dEff, dAlpha = <W/sigma, dEff>.
		s := d.Alpha.Data[0] / d.sigmaRaw
		var dAlpha float64
		for i := range d.W.Grad {
			d.W.Grad[i] += s * dEff.Data[i]
			dAlpha += d.W.Data[i] / d.sigmaRaw * dEff.Data[i]
		}
		d.Alpha.Grad[0] += dAlpha
	}
	d.dXBuf = d.effW.TMulInto(grad, d.dXBuf)
	return d.dXBuf
}

// Params implements Layer.
func (d *Dense) Params() []*Param {
	p := []*Param{d.W, d.B}
	if d.Alpha != nil {
		p = append(p, d.Alpha)
	}
	return p
}

// LinearOp implements Spectral. For a dense layer the gains recover the
// paper's Inequality (3) terms exactly: AddGain = sqrt(n_l) and
// InflGain = sqrt(min(n_{l-1}, n_l)).
func (d *Dense) LinearOp() LinearOp {
	d.ensureSigma()
	eff := d.EffectiveMatrix()
	var sigma float64
	if d.PSN {
		sigma = math.Abs(d.Alpha.Data[0])
	} else {
		sigma = d.sigmaRaw
	}
	rows := make([]float64, d.Out)
	for r := 0; r < d.Out; r++ {
		rows[r] = eff.RowNorm2(r)
	}
	return LinearOp{
		LayerName: d.name,
		Weights:   eff.Data,
		Sigma:     sigma,
		InDim:     d.In,
		OutDim:    d.Out,
		WRows:     d.Out,
		WCols:     d.In,
		AddGain:   math.Sqrt(float64(d.Out)),
		InflGain:  math.Sqrt(math.Min(float64(d.In), float64(d.Out))),
		RowNorms:  rows,
	}
}

// AddRegGrad implements Regularized: the PSN penalty is lambda * alpha^2
// per layer (squared sum of spectral norms, Section III-C). Plain layers
// contribute lambda * sigma^2 with no gradient (reported for completeness).
func (d *Dense) AddRegGrad(lambda float64) float64 {
	if !d.PSN {
		d.ensureSigma()
		return lambda * d.sigmaRaw * d.sigmaRaw
	}
	a := d.Alpha.Data[0]
	d.Alpha.Grad[0] += 2 * lambda * a
	return lambda * a * a
}
