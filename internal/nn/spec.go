package nn

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"

	"github.com/scidata/errprop/internal/integrity"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/tensor"
)

// LayerSpec describes one layer of a network architecture. Specs are the
// serialization format and the template from which quantized inference
// copies are constructed.
type LayerSpec struct {
	Type string `json:"type"` // dense | conv | act | round | avgpool | maxpool | gap | bn | upsample | skipconcat | attention | residual

	Name string `json:"name,omitempty"`

	// dense
	In  int `json:"in,omitempty"`
	Out int `json:"out,omitempty"`

	// conv / pooling input geometry
	C int `json:"c,omitempty"`
	H int `json:"h,omitempty"`
	W int `json:"w,omitempty"`

	// conv
	OutC   int `json:"outc,omitempty"`
	K      int `json:"k,omitempty"`
	Stride int `json:"stride,omitempty"`
	Pad    int `json:"pad,omitempty"`

	// act
	Act string `json:"act,omitempty"`

	// round: activation quantization format name (numfmt.Format.String)
	Fmt string `json:"fmt,omitempty"`

	// dense/conv options
	PSN bool `json:"psn,omitempty"`
	// InitAct hints the weight init distribution (defaults to Act-free
	// Kaiming).
	InitAct string `json:"initact,omitempty"`

	// residual
	Branch   []LayerSpec `json:"branch,omitempty"`
	Shortcut []LayerSpec `json:"shortcut,omitempty"`
}

// Spec is a complete architecture description.
type Spec struct {
	Name     string      `json:"name"`
	InputDim int         `json:"input_dim"`
	Layers   []LayerSpec `json:"layers"`
}

// Build constructs a freshly initialized Network from the spec. The seed
// makes initialization deterministic. The spec is validated first, so a
// geometry mistake fails with a position-annotated error before any
// parameter is allocated.
func (s *Spec) Build(seed int64) (*Network, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	layers, err := buildLayers(s.Layers, rng)
	if err != nil {
		return nil, err
	}
	return &Network{InputDim: s.InputDim, Layers: layers, Spec: s}, nil
}

// Validate statically checks the spec before any network is built: every
// layer's own geometry must be well-formed, and consecutive layers must
// chain — each layer's input feature count has to equal the previous
// layer's output feature count (tracked through residual branch/shortcut
// pairs and skip-concat branches as well). Errors carry the layer's
// position path, e.g. `layers[3].branch[1] (conv "c1")`, so a deep
// mistake in a generated spec is located immediately.
//
// Validation is purely structural: it allocates nothing and never runs
// the RNG, so it is safe to call on untrusted serialized specs before
// Build pays for parameter initialization.
func (s *Spec) Validate() error {
	if s.InputDim < 0 {
		return fmt.Errorf("nn: spec %q: negative input dim %d", s.Name, s.InputDim)
	}
	_, err := validateLayers(s.Layers, s.InputDim, "layers")
	return err
}

// InferShapes statically computes the flattened output feature count of
// a spec — the same chaining walk Validate performs — without building a
// network or running any data through it. It errors if the spec is
// invalid or if the output dimension cannot be determined statically
// (e.g. an all-activation spec with unknown input). Serving uses this
// (via Engine.OutputDim) instead of probing with a zero-sample forward.
func InferShapes(s *Spec) (int, error) {
	if s.InputDim < 0 {
		return 0, fmt.Errorf("nn: spec %q: negative input dim %d", s.Name, s.InputDim)
	}
	out, err := validateLayers(s.Layers, s.InputDim, "layers")
	if err != nil {
		return 0, err
	}
	if out <= 0 {
		return 0, fmt.Errorf("nn: spec %q: output dim cannot be determined statically", s.Name)
	}
	return out, nil
}

// validateLayers checks one layer sequence starting from inDim flattened
// features (0 = unknown, adopted from the first layer that declares an
// input geometry). It returns the sequence's output feature count (0 if
// it cannot be determined, e.g. an all-activation sequence with unknown
// input).
func validateLayers(specs []LayerSpec, inDim int, path string) (int, error) {
	cur := inDim
	for i, ls := range specs {
		fail := func(format string, args ...any) (int, error) {
			name := ls.Name
			if name == "" {
				name = ls.Type
			}
			return 0, fmt.Errorf("nn: spec %s[%d] (%s %q): %s", path, i, ls.Type, name, fmt.Sprintf(format, args...))
		}
		// chain verifies this layer's declared input feature count
		// against the running output of the preceding layers.
		chain := func(layerIn int) error {
			if cur > 0 && layerIn != cur {
				_, err := fail("input dim %d does not chain from previous output %d", layerIn, cur)
				return err
			}
			return nil
		}
		switch ls.Type {
		case "dense":
			if ls.In <= 0 || ls.Out <= 0 {
				return fail("needs positive in/out, got %d/%d", ls.In, ls.Out)
			}
			if err := chain(ls.In); err != nil {
				return 0, err
			}
			cur = ls.Out
		case "conv":
			if ls.C <= 0 || ls.H <= 0 || ls.W <= 0 || ls.OutC <= 0 || ls.K <= 0 || ls.Stride <= 0 {
				return fail("needs positive c/h/w/outc/k/stride, got %d/%d/%d/%d/%d/%d", ls.C, ls.H, ls.W, ls.OutC, ls.K, ls.Stride)
			}
			if ls.Pad < 0 {
				return fail("negative padding %d", ls.Pad)
			}
			outH := tensor.ConvOutSize(ls.H, ls.K, ls.Stride, ls.Pad)
			outW := tensor.ConvOutSize(ls.W, ls.K, ls.Stride, ls.Pad)
			if outH <= 0 || outW <= 0 {
				return fail("kernel %d (stride %d, pad %d) does not fit %dx%d input", ls.K, ls.Stride, ls.Pad, ls.H, ls.W)
			}
			if err := chain(ls.C * ls.H * ls.W); err != nil {
				return 0, err
			}
			cur = ls.OutC * outH * outW
		case "act":
			if _, err := NewActivation(ls.Act); err != nil {
				return fail("%v", err)
			}
		case "round":
			f, err := numfmt.ParseFormat(ls.Fmt)
			if err != nil {
				return fail("%v", err)
			}
			if f == numfmt.INT8 {
				return fail("INT8 activation rounding needs calibration; unsupported")
			}
		case "avgpool", "maxpool":
			if ls.C <= 0 || ls.H <= 0 || ls.W <= 0 || ls.K <= 0 {
				return fail("needs positive c/h/w/k, got %d/%d/%d/%d", ls.C, ls.H, ls.W, ls.K)
			}
			if ls.K > ls.H || ls.K > ls.W {
				return fail("pool window %d exceeds %dx%d input", ls.K, ls.H, ls.W)
			}
			if err := chain(ls.C * ls.H * ls.W); err != nil {
				return 0, err
			}
			cur = ls.C * (ls.H / ls.K) * (ls.W / ls.K)
		case "bn":
			if ls.C <= 0 || ls.H <= 0 || ls.W <= 0 {
				return fail("needs positive c/h/w, got %d/%d/%d", ls.C, ls.H, ls.W)
			}
			if err := chain(ls.C * ls.H * ls.W); err != nil {
				return 0, err
			}
			cur = ls.C * ls.H * ls.W
		case "gap":
			if ls.C <= 0 || ls.H <= 0 || ls.W <= 0 {
				return fail("needs positive c/h/w, got %d/%d/%d", ls.C, ls.H, ls.W)
			}
			if err := chain(ls.C * ls.H * ls.W); err != nil {
				return 0, err
			}
			cur = ls.C
		case "upsample":
			if ls.C <= 0 || ls.H <= 0 || ls.W <= 0 {
				return fail("needs positive c/h/w, got %d/%d/%d", ls.C, ls.H, ls.W)
			}
			if err := chain(ls.C * ls.H * ls.W); err != nil {
				return 0, err
			}
			cur = ls.C * ls.H * ls.W * 4
		case "attention":
			if ls.In <= 0 || ls.Out <= 0 {
				return fail("needs positive token count (in) and dim (out), got %d/%d", ls.In, ls.Out)
			}
			if err := chain(ls.In * ls.Out); err != nil {
				return 0, err
			}
			cur = ls.In * ls.Out
		case "skipconcat":
			if ls.C <= 0 || ls.OutC <= 0 || ls.H <= 0 || ls.W <= 0 {
				return fail("needs positive identity channels (c), branch channels (outc) and h/w, got %d/%d/%d/%d", ls.C, ls.OutC, ls.H, ls.W)
			}
			in := ls.C * ls.H * ls.W
			if err := chain(in); err != nil {
				return 0, err
			}
			bOut, err := validateLayers(ls.Branch, in, fmt.Sprintf("%s[%d].branch", path, i))
			if err != nil {
				return 0, err
			}
			if want := ls.OutC * ls.H * ls.W; bOut > 0 && bOut != want {
				return fail("branch output %d != declared branch half %d (outc %d x %dx%d)", bOut, want, ls.OutC, ls.H, ls.W)
			}
			cur = (ls.C + ls.OutC) * ls.H * ls.W
		case "residual":
			bOut, err := validateLayers(ls.Branch, cur, fmt.Sprintf("%s[%d].branch", path, i))
			if err != nil {
				return 0, err
			}
			sOut, err := validateLayers(ls.Shortcut, cur, fmt.Sprintf("%s[%d].shortcut", path, i))
			if err != nil {
				return 0, err
			}
			if bOut > 0 && sOut > 0 && bOut != sOut {
				return fail("branch output %d != shortcut output %d; residual halves must agree", bOut, sOut)
			}
			switch {
			case bOut > 0:
				cur = bOut
			case sOut > 0:
				cur = sOut
			}
		default:
			return fail("unknown layer type")
		}
	}
	return cur, nil
}

func buildLayers(specs []LayerSpec, rng *rand.Rand) ([]Layer, error) {
	var out []Layer
	for i, ls := range specs {
		name := ls.Name
		if name == "" {
			name = fmt.Sprintf("%s%d", ls.Type, i)
		}
		switch ls.Type {
		case "dense":
			if ls.In <= 0 || ls.Out <= 0 {
				return nil, fmt.Errorf("nn: dense %q needs in/out", name)
			}
			out = append(out, NewDense(name, ls.In, ls.Out, ls.InitAct, ls.PSN, rng))
		case "conv":
			if ls.C <= 0 || ls.H <= 0 || ls.W <= 0 || ls.OutC <= 0 || ls.K <= 0 || ls.Stride <= 0 {
				return nil, fmt.Errorf("nn: conv %q needs geometry", name)
			}
			out = append(out, NewConv2D(name, ls.C, ls.H, ls.W, ls.OutC, ls.K, ls.Stride, ls.Pad, ls.PSN, rng))
		case "act":
			a, err := NewActivation(ls.Act)
			if err != nil {
				return nil, err
			}
			out = append(out, a)
		case "round":
			f, err := numfmt.ParseFormat(ls.Fmt)
			if err != nil {
				return nil, err
			}
			r, err := NewRoundLayer(name, f)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		case "avgpool":
			out = append(out, NewAvgPool2D(name, ls.C, ls.H, ls.W, ls.K))
		case "maxpool":
			out = append(out, NewMaxPool2D(name, ls.C, ls.H, ls.W, ls.K))
		case "bn":
			out = append(out, NewBatchNorm2D(name, ls.C, ls.H, ls.W))
		case "gap":
			out = append(out, NewGlobalAvgPool(name, ls.C, ls.H, ls.W))
		case "upsample":
			out = append(out, NewUpsample2D(name, ls.C, ls.H, ls.W))
		case "attention":
			// In = token count T, Out = per-token dimension D.
			if ls.In <= 0 || ls.Out <= 0 {
				return nil, fmt.Errorf("nn: attention %q needs token count (in) and dim (out)", name)
			}
			out = append(out, NewSelfAttention(name, ls.In, ls.Out, rng))
		case "skipconcat":
			// C = identity-half channels, OutC = branch-half channels.
			branch, err := buildLayers(ls.Branch, rng)
			if err != nil {
				return nil, err
			}
			out = append(out, NewSkipConcat(name, ls.C, ls.OutC, ls.H, ls.W, branch))
		case "residual":
			branch, err := buildLayers(ls.Branch, rng)
			if err != nil {
				return nil, err
			}
			shortcut, err := buildLayers(ls.Shortcut, rng)
			if err != nil {
				return nil, err
			}
			out = append(out, NewResidual(name, branch, shortcut))
		default:
			return nil, fmt.Errorf("nn: unknown layer type %q", ls.Type)
		}
	}
	return out, nil
}

// Model magics. "ERRPROPNN2" carried no integrity information;
// "ERRPROPNN3" frames the same body with a declared length and a CRC32C
// checksum, so a truncated or bit-flipped model file is detected before
// any of its bytes are trusted. Save writes v3; Load reads both.
const (
	modelMagic   = "ERRPROPNN2"
	modelMagicV3 = "ERRPROPNN3"
)

// maxModelBytes caps the declared v3 body length (1 GiB — far above any
// network this repo trains) so a corrupt length field cannot size an
// absurd allocation from untrusted bytes.
const maxModelBytes = 1 << 30

// Save serializes the network (spec + parameter values) to w in the v3
// checksummed framing: magic, body length, body CRC32C, body. Networks
// without a Spec cannot be saved.
func (n *Network) Save(w io.Writer) error {
	if n.Spec == nil {
		return fmt.Errorf("nn: network has no Spec; cannot serialize")
	}
	var body bytes.Buffer
	if err := n.saveBody(&body); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(modelMagicV3); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(body.Len())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, integrity.Checksum(body.Bytes())); err != nil {
		return err
	}
	if _, err := bw.Write(body.Bytes()); err != nil {
		return err
	}
	return bw.Flush()
}

// saveBody writes the magic-less model body: spec JSON, parameters, and
// spectral-norm estimates (identical to the v2 wire layout after its
// magic, so the legacy reader and the v3 reader share loadBody).
func (n *Network) saveBody(bw io.Writer) error {
	specJSON, err := json.Marshal(n.Spec)
	if err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(specJSON))); err != nil {
		return err
	}
	if _, err := bw.Write(specJSON); err != nil {
		return err
	}
	params := n.Params()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Data))); err != nil {
			return err
		}
		for _, v := range p.Data {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	// Persist the spectral-norm estimates so PSN effective weights are
	// bit-identical after Load (power iteration from a cold start can
	// land slightly off when top singular values cluster).
	sigmas := n.spectralSigmas()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(sigmas))); err != nil {
		return err
	}
	for _, s := range sigmas {
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(s)); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a network serialized by Save — the checksummed v3 framing
// or the legacy v2 one — and refreshes its spectral state so it is
// immediately ready for analysis and inference. Damage to a v3 file
// surfaces as an error wrapping integrity.ErrCorrupt or
// integrity.ErrTruncated, so callers can distinguish a bad model file
// from a usage error.
func Load(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, truncOr(err, "model magic")
	}
	switch string(magic) {
	case modelMagicV3:
		var bodyLen uint64
		if err := binary.Read(br, binary.LittleEndian, &bodyLen); err != nil {
			return nil, truncOr(err, "model body length")
		}
		if bodyLen > maxModelBytes {
			return nil, fmt.Errorf("nn: model: %w: declared body length %d exceeds %d", integrity.ErrCorrupt, bodyLen, int64(maxModelBytes))
		}
		var crc uint32
		if err := binary.Read(br, binary.LittleEndian, &crc); err != nil {
			return nil, truncOr(err, "model checksum")
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, truncOr(err, "model body")
		}
		if got := integrity.Checksum(body); got != crc {
			return nil, fmt.Errorf("nn: model: %w: body checksum %08x != stored %08x", integrity.ErrCorrupt, got, crc)
		}
		return loadBody(bytes.NewReader(body), true)
	case modelMagic:
		// Legacy unchecksummed format: parse streaming, no verification
		// possible.
		return loadBody(br, false)
	}
	return nil, fmt.Errorf("nn: model: %w: bad magic %q", integrity.ErrCorrupt, magic)
}

// truncOr maps unexpected end-of-stream onto the typed truncation
// sentinel and passes other I/O errors through with context.
func truncOr(err error, what string) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("nn: model: %w: %s", integrity.ErrTruncated, what)
	}
	return fmt.Errorf("nn: model: reading %s: %w", what, err)
}

// loadBody parses the model body (spec, params, sigmas). verified says
// the bytes already passed a checksum, in which case any structural
// mismatch means the model was written wrong (corrupt), not damaged in
// transit — either way the typed sentinel applies.
func loadBody(br io.Reader, verified bool) (*Network, error) {
	var specLen uint32
	if err := binary.Read(br, binary.LittleEndian, &specLen); err != nil {
		return nil, truncOr(err, "spec length")
	}
	if specLen > 1<<24 {
		return nil, fmt.Errorf("nn: model: %w: implausible spec length %d", integrity.ErrCorrupt, specLen)
	}
	specJSON := make([]byte, specLen)
	if _, err := io.ReadFull(br, specJSON); err != nil {
		return nil, truncOr(err, "spec JSON")
	}
	var spec Spec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		return nil, fmt.Errorf("nn: model: %w: spec JSON: %v", integrity.ErrCorrupt, err)
	}
	// Validate the deserialized (untrusted) spec before Build allocates
	// parameters; Build re-checks, but failing here pins the error to
	// the load path.
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	net, err := spec.Build(0)
	if err != nil {
		return nil, err
	}
	var nParams uint32
	if err := binary.Read(br, binary.LittleEndian, &nParams); err != nil {
		return nil, truncOr(err, "parameter count")
	}
	params := net.Params()
	if int(nParams) != len(params) {
		return nil, fmt.Errorf("nn: model: %w: parameter count %d != spec's %d", integrity.ErrCorrupt, nParams, len(params))
	}
	for _, p := range params {
		var plen uint32
		if err := binary.Read(br, binary.LittleEndian, &plen); err != nil {
			return nil, truncOr(err, "parameter length")
		}
		if int(plen) != len(p.Data) {
			return nil, fmt.Errorf("nn: model: %w: parameter %s length %d != expected %d", integrity.ErrCorrupt, p.Name, plen, len(p.Data))
		}
		for i := range p.Data {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return nil, truncOr(err, "parameter data")
			}
			p.Data[i] = math.Float64frombits(bits)
		}
	}
	// Restore the persisted sigma estimates. Checksummed bodies must
	// carry a consistent sigma section; the unverified legacy path keeps
	// its lenient fall-back-to-recompute behavior.
	var nSigma uint32
	if err := binary.Read(br, binary.LittleEndian, &nSigma); err == nil {
		sigmas := make([]float64, nSigma)
		ok := true
		for i := range sigmas {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				ok = false
				break
			}
			sigmas[i] = math.Float64frombits(bits)
		}
		if ok && net.setSpectralSigmas(sigmas) {
			return net, nil
		}
		if verified {
			return nil, fmt.Errorf("nn: model: %w: inconsistent sigma section (%d entries)", integrity.ErrCorrupt, nSigma)
		}
	} else if verified {
		return nil, truncOr(err, "sigma count")
	}
	net.RefreshSigmas()
	return net, nil
}
