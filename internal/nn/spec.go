package nn

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"

	"github.com/scidata/errprop/internal/numfmt"
)

// LayerSpec describes one layer of a network architecture. Specs are the
// serialization format and the template from which quantized inference
// copies are constructed.
type LayerSpec struct {
	Type string `json:"type"` // dense | conv | act | round | avgpool | maxpool | gap | bn | upsample | skipconcat | attention | residual

	Name string `json:"name,omitempty"`

	// dense
	In  int `json:"in,omitempty"`
	Out int `json:"out,omitempty"`

	// conv / pooling input geometry
	C int `json:"c,omitempty"`
	H int `json:"h,omitempty"`
	W int `json:"w,omitempty"`

	// conv
	OutC   int `json:"outc,omitempty"`
	K      int `json:"k,omitempty"`
	Stride int `json:"stride,omitempty"`
	Pad    int `json:"pad,omitempty"`

	// act
	Act string `json:"act,omitempty"`

	// round: activation quantization format name (numfmt.Format.String)
	Fmt string `json:"fmt,omitempty"`

	// dense/conv options
	PSN bool `json:"psn,omitempty"`
	// InitAct hints the weight init distribution (defaults to Act-free
	// Kaiming).
	InitAct string `json:"initact,omitempty"`

	// residual
	Branch   []LayerSpec `json:"branch,omitempty"`
	Shortcut []LayerSpec `json:"shortcut,omitempty"`
}

// Spec is a complete architecture description.
type Spec struct {
	Name     string      `json:"name"`
	InputDim int         `json:"input_dim"`
	Layers   []LayerSpec `json:"layers"`
}

// Build constructs a freshly initialized Network from the spec. The seed
// makes initialization deterministic.
func (s *Spec) Build(seed int64) (*Network, error) {
	rng := rand.New(rand.NewSource(seed))
	layers, err := buildLayers(s.Layers, rng)
	if err != nil {
		return nil, err
	}
	return &Network{InputDim: s.InputDim, Layers: layers, Spec: s}, nil
}

func buildLayers(specs []LayerSpec, rng *rand.Rand) ([]Layer, error) {
	var out []Layer
	for i, ls := range specs {
		name := ls.Name
		if name == "" {
			name = fmt.Sprintf("%s%d", ls.Type, i)
		}
		switch ls.Type {
		case "dense":
			if ls.In <= 0 || ls.Out <= 0 {
				return nil, fmt.Errorf("nn: dense %q needs in/out", name)
			}
			out = append(out, NewDense(name, ls.In, ls.Out, ls.InitAct, ls.PSN, rng))
		case "conv":
			if ls.C <= 0 || ls.H <= 0 || ls.W <= 0 || ls.OutC <= 0 || ls.K <= 0 || ls.Stride <= 0 {
				return nil, fmt.Errorf("nn: conv %q needs geometry", name)
			}
			out = append(out, NewConv2D(name, ls.C, ls.H, ls.W, ls.OutC, ls.K, ls.Stride, ls.Pad, ls.PSN, rng))
		case "act":
			a, err := NewActivation(ls.Act)
			if err != nil {
				return nil, err
			}
			out = append(out, a)
		case "round":
			f, err := numfmt.ParseFormat(ls.Fmt)
			if err != nil {
				return nil, err
			}
			r, err := NewRoundLayer(name, f)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		case "avgpool":
			out = append(out, NewAvgPool2D(name, ls.C, ls.H, ls.W, ls.K))
		case "maxpool":
			out = append(out, NewMaxPool2D(name, ls.C, ls.H, ls.W, ls.K))
		case "bn":
			out = append(out, NewBatchNorm2D(name, ls.C, ls.H, ls.W))
		case "gap":
			out = append(out, NewGlobalAvgPool(name, ls.C, ls.H, ls.W))
		case "upsample":
			out = append(out, NewUpsample2D(name, ls.C, ls.H, ls.W))
		case "attention":
			// In = token count T, Out = per-token dimension D.
			if ls.In <= 0 || ls.Out <= 0 {
				return nil, fmt.Errorf("nn: attention %q needs token count (in) and dim (out)", name)
			}
			out = append(out, NewSelfAttention(name, ls.In, ls.Out, rng))
		case "skipconcat":
			// C = identity-half channels, OutC = branch-half channels.
			branch, err := buildLayers(ls.Branch, rng)
			if err != nil {
				return nil, err
			}
			out = append(out, NewSkipConcat(name, ls.C, ls.OutC, ls.H, ls.W, branch))
		case "residual":
			branch, err := buildLayers(ls.Branch, rng)
			if err != nil {
				return nil, err
			}
			shortcut, err := buildLayers(ls.Shortcut, rng)
			if err != nil {
				return nil, err
			}
			out = append(out, NewResidual(name, branch, shortcut))
		default:
			return nil, fmt.Errorf("nn: unknown layer type %q", ls.Type)
		}
	}
	return out, nil
}

const modelMagic = "ERRPROPNN2"

// Save serializes the network (spec + parameter values) to w. Networks
// without a Spec cannot be saved.
func (n *Network) Save(w io.Writer) error {
	if n.Spec == nil {
		return fmt.Errorf("nn: network has no Spec; cannot serialize")
	}
	bw := bufio.NewWriter(w)
	specJSON, err := json.Marshal(n.Spec)
	if err != nil {
		return err
	}
	if _, err := bw.WriteString(modelMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(specJSON))); err != nil {
		return err
	}
	if _, err := bw.Write(specJSON); err != nil {
		return err
	}
	params := n.Params()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Data))); err != nil {
			return err
		}
		for _, v := range p.Data {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	// Persist the spectral-norm estimates so PSN effective weights are
	// bit-identical after Load (power iteration from a cold start can
	// land slightly off when top singular values cluster).
	sigmas := n.spectralSigmas()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(sigmas))); err != nil {
		return err
	}
	for _, s := range sigmas {
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(s)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a network serialized by Save and refreshes its spectral
// state so it is immediately ready for analysis and inference.
func Load(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("nn: bad model magic %q", magic)
	}
	var specLen uint32
	if err := binary.Read(br, binary.LittleEndian, &specLen); err != nil {
		return nil, err
	}
	if specLen > 1<<24 {
		return nil, fmt.Errorf("nn: implausible spec length %d", specLen)
	}
	specJSON := make([]byte, specLen)
	if _, err := io.ReadFull(br, specJSON); err != nil {
		return nil, err
	}
	var spec Spec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		return nil, err
	}
	net, err := spec.Build(0)
	if err != nil {
		return nil, err
	}
	var nParams uint32
	if err := binary.Read(br, binary.LittleEndian, &nParams); err != nil {
		return nil, err
	}
	params := net.Params()
	if int(nParams) != len(params) {
		return nil, fmt.Errorf("nn: parameter count %d != spec's %d", nParams, len(params))
	}
	for _, p := range params {
		var plen uint32
		if err := binary.Read(br, binary.LittleEndian, &plen); err != nil {
			return nil, err
		}
		if int(plen) != len(p.Data) {
			return nil, fmt.Errorf("nn: parameter %s length %d != expected %d", p.Name, plen, len(p.Data))
		}
		for i := range p.Data {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return nil, err
			}
			p.Data[i] = math.Float64frombits(bits)
		}
	}
	// Restore the persisted sigma estimates; fall back to recomputation
	// for any mismatch.
	var nSigma uint32
	if err := binary.Read(br, binary.LittleEndian, &nSigma); err == nil {
		sigmas := make([]float64, nSigma)
		ok := true
		for i := range sigmas {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				ok = false
				break
			}
			sigmas[i] = math.Float64frombits(bits)
		}
		if ok && net.setSpectralSigmas(sigmas) {
			return net, nil
		}
	}
	net.RefreshSigmas()
	return net, nil
}
