package nn

import (
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/tensor"
)

// goldenInferSpecs is the golden architecture set the engine must match
// bit for bit: MLPs (PSN and plain, saturating and non-monotone
// activations), a conv/residual net, a BN+maxpool+round stack, a
// self-attention block, and a U-Net.
func goldenInferSpecs() []*Spec {
	return []*Spec{
		MLPSpec("mlp-psn", []int{9, 16, 12, 9}, ActTanh, true),
		MLPSpec("mlp-gelu", []int{9, 16, 9}, ActGELU, false),
		MLPSpec("mlp-sig", []int{6, 10, 4}, ActSigmoid, false),
		ResNetSpec("resnet", 1, 8, 8, 4, []int{1, 1}, []int{4, 8}, ActReLU, true),
		{
			Name: "bn-pool-round", InputDim: 2 * 6 * 6,
			Layers: []LayerSpec{
				{Type: "conv", Name: "c1", C: 2, H: 6, W: 6, OutC: 4, K: 3, Stride: 1, Pad: 1},
				{Type: "bn", Name: "bn1", C: 4, H: 6, W: 6},
				{Type: "act", Act: ActReLU},
				{Type: "maxpool", Name: "mp1", C: 4, H: 6, W: 6, K: 2},
				{Type: "round", Name: "r1", Fmt: "fp16"},
				{Type: "dense", Name: "fc", In: 4 * 3 * 3, Out: 5},
			},
		},
		{
			Name: "attn", InputDim: 4 * 3,
			Layers: []LayerSpec{
				{Type: "attention", Name: "sa", In: 4, Out: 3},
				{Type: "act", Act: ActTanh},
				{Type: "dense", Name: "head", In: 12, Out: 6},
			},
		},
		UNetSpec("unet", 2, 8, 8, 3, 4, ActReLU, true),
	}
}

func buildGolden(t testing.TB, s *Spec, seed int64) *Network {
	t.Helper()
	net, err := s.Build(seed)
	if err != nil {
		t.Fatalf("build %s: %v", s.Name, err)
	}
	return net
}

func randInferBatch(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	x := tensor.NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

// TestEngineBitIdenticalToLegacyForward is the acceptance oracle: for
// every golden spec, Engine.Forward must equal Network.Forward exactly
// (==, not approximately) over seeded random batches, including batches
// beyond the compiled maxBatch (arena growth) and repeated calls
// (buffer reuse).
func TestEngineBitIdenticalToLegacyForward(t *testing.T) {
	for _, spec := range goldenInferSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			net := buildGolden(t, spec, 7)
			const maxBatch = 8
			eng, err := CompileInference(net, maxBatch)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			wantOut, err := InferShapes(spec)
			if err != nil {
				t.Fatalf("InferShapes: %v", err)
			}
			if eng.OutputDim() != wantOut {
				t.Fatalf("OutputDim %d != InferShapes %d", eng.OutputDim(), wantOut)
			}
			rng := rand.New(rand.NewSource(11))
			for _, batch := range []int{1, 5, 8, 11} {
				for rep := 0; rep < 2; rep++ {
					x := randInferBatch(rng, spec.InputDim, batch)
					want := net.Forward(x, false)
					got := eng.Forward(x)
					if got.Rows != want.Rows || got.Cols != want.Cols {
						t.Fatalf("batch %d: shape %dx%d != %dx%d", batch, got.Rows, got.Cols, want.Rows, want.Cols)
					}
					if !bitEqual(got.Data, want.Data) {
						t.Fatalf("batch %d rep %d: engine output not bit-identical to legacy Forward", batch, rep)
					}
				}
			}
		})
	}
}

// TestEngineSharesWeights verifies engines see live weight updates (no
// per-engine weight copies): mutate the source network, and the next
// engine Forward must match the legacy Forward on the mutated weights.
func TestEngineSharesWeights(t *testing.T) {
	spec := MLPSpec("shared", []int{5, 8, 3}, ActTanh, false)
	net := buildGolden(t, spec, 3)
	eng, err := CompileInference(net, 4)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	x := randInferBatch(rng, 5, 4)
	before := eng.Forward(x).Clone()
	for _, p := range net.Params() {
		for i := range p.Data {
			p.Data[i] *= 1.5
		}
	}
	want := net.Forward(x, false)
	got := eng.Forward(x)
	if !bitEqual(got.Data, want.Data) {
		t.Fatal("engine did not observe live weight update")
	}
	if bitEqual(got.Data, before.Data) {
		t.Fatal("engine output unchanged after weight mutation; weights must be shared, not copied")
	}
}

// TestEngineForwardZeroAllocs is the steady-state allocation guarantee:
// once compiled and warmed, Engine.Forward performs zero heap
// allocations for the golden MLP, conv/residual, and U-Net specs.
func TestEngineForwardZeroAllocs(t *testing.T) {
	specs := []*Spec{
		MLPSpec("mlp-psn", []int{9, 16, 12, 9}, ActTanh, true),
		ResNetSpec("resnet", 1, 8, 8, 4, []int{1, 1}, []int{4, 8}, ActReLU, true),
		UNetSpec("unet", 2, 8, 8, 3, 4, ActReLU, true),
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			net := buildGolden(t, spec, 7)
			eng, err := CompileInference(net, 8)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			rng := rand.New(rand.NewSource(13))
			x := randInferBatch(rng, spec.InputDim, 8)
			eng.Forward(x) // warm the arena
			if allocs := testing.AllocsPerRun(30, func() { eng.Forward(x) }); allocs != 0 {
				t.Fatalf("steady-state Engine.Forward: %v allocs/op, want 0", allocs)
			}
		})
	}
}

// TestForwardVecEngineBacked pins the ForwardVec refactor: bit-identical
// to the legacy matrix path, the result is an independent copy, and the
// steady state allocates only the returned vector.
func TestForwardVecEngineBacked(t *testing.T) {
	spec := MLPSpec("vec", []int{7, 12, 4}, ActTanh, true)
	net := buildGolden(t, spec, 9)
	legacy := buildGolden(t, spec, 9)
	rng := rand.New(rand.NewSource(17))
	x := make(tensor.Vector, 7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := legacy.Forward(tensor.NewMatrixFrom(7, 1, append(tensor.Vector(nil), x...)), false)
	got := net.ForwardVec(x)
	if len(got) != want.Rows || !bitEqual(got, want.Data) {
		t.Fatal("engine-backed ForwardVec not bit-identical to legacy Forward")
	}
	// The result must be an independent copy, not a view of engine state.
	got[0] += 1e9
	again := net.ForwardVec(x)
	if !bitEqual(again, want.Data) {
		t.Fatal("ForwardVec result aliases engine-owned memory")
	}
	if allocs := testing.AllocsPerRun(30, func() { net.ForwardVec(x) }); allocs > 1 {
		t.Fatalf("steady-state ForwardVec: %v allocs/op, want <= 1 (the returned vector)", allocs)
	}
}

// TestForwardVecFallback: hand-assembled networks (no compilable spec
// path) must keep working through the legacy route.
func TestForwardVecFallback(t *testing.T) {
	// InputDim 0 marks a hand-assembled network; compilation must fail
	// and ForwardVec must still produce the legacy result.
	rng := rand.New(rand.NewSource(21))
	d := NewDense("fc", 4, 3, ActTanh, false, rng)
	net := &Network{Layers: []Layer{d}}
	if _, err := CompileInference(net, 4); err == nil {
		t.Fatal("expected compile error for network without static input dim")
	}
	x := tensor.Vector{0.1, -0.2, 0.3, -0.4}
	want := net.Forward(tensor.NewMatrixFrom(4, 1, append(tensor.Vector(nil), x...)), false)
	got := net.ForwardVec(x)
	if !bitEqual(got, want.Data) {
		t.Fatal("fallback ForwardVec differs from legacy Forward")
	}
}

// TestCompileInferenceErrors pins the compile-time failure modes.
func TestCompileInferenceErrors(t *testing.T) {
	spec := MLPSpec("m", []int{4, 3}, ActTanh, false)
	net := buildGolden(t, spec, 1)
	if _, err := CompileInference(net, 0); err == nil {
		t.Fatal("expected error for maxBatch 0")
	}
	if _, err := CompileInference(nil, 4); err == nil {
		t.Fatal("expected error for nil network")
	}
	if _, err := CompileInference(&Network{InputDim: 0}, 4); err == nil {
		t.Fatal("expected error for unknown input dim")
	}
}

// TestInferShapesMatchesBuiltNetworks: static shape inference must agree
// with a real forward pass for every golden spec.
func TestInferShapesMatchesBuiltNetworks(t *testing.T) {
	for _, spec := range goldenInferSpecs() {
		out, err := InferShapes(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		net := buildGolden(t, spec, 2)
		y := net.Forward(randInferBatch(rand.New(rand.NewSource(1)), spec.InputDim, 2), false)
		if y.Rows != out {
			t.Fatalf("%s: InferShapes %d != forward output rows %d", spec.Name, out, y.Rows)
		}
	}
}

func TestInferShapesErrors(t *testing.T) {
	if _, err := InferShapes(&Spec{Name: "neg", InputDim: -1}); err == nil {
		t.Fatal("expected error for negative input dim")
	}
	if _, err := InferShapes(&Spec{Name: "unknown", Layers: []LayerSpec{{Type: "act", Act: ActTanh}}}); err == nil {
		t.Fatal("expected error for statically unknown output dim")
	}
	if _, err := InferShapes(&Spec{Name: "bad", InputDim: 4, Layers: []LayerSpec{{Type: "dense", In: 5, Out: 2}}}); err == nil {
		t.Fatal("expected chaining error")
	}
}

// TestEngineRoundLayerFormats covers activation-rounding formats beyond
// the golden set's fp16 (engine must call the identical Round path).
func TestEngineRoundLayerFormats(t *testing.T) {
	for _, f := range []numfmt.Format{numfmt.FP32, numfmt.TF32, numfmt.BF16} {
		spec := &Spec{Name: "round-" + f.String(), InputDim: 6, Layers: []LayerSpec{
			{Type: "dense", Name: "fc1", In: 6, Out: 8},
			{Type: "round", Name: "r", Fmt: f.String()},
			{Type: "dense", Name: "fc2", In: 8, Out: 3},
		}}
		net := buildGolden(t, spec, 4)
		eng, err := CompileInference(net, 4)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		x := randInferBatch(rand.New(rand.NewSource(6)), 6, 4)
		if !bitEqual(eng.Forward(x).Data, net.Forward(x, false).Data) {
			t.Fatalf("%s: engine not bit-identical", spec.Name)
		}
	}
}

func benchForwardNet(b *testing.B) (*Network, *Engine) {
	b.Helper()
	spec := MLPSpec("bench", []int{9, 64, 64, 9}, ActTanh, true)
	net, err := spec.Build(7)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := CompileInference(net, 64)
	if err != nil {
		b.Fatal(err)
	}
	return net, eng
}

func BenchmarkForwardLegacy(b *testing.B) {
	net, _ := benchForwardNet(b)
	for _, batch := range []int{1, 16, 64} {
		batch := batch
		b.Run(map[int]string{1: "batch1", 16: "batch16", 64: "batch64"}[batch], func(b *testing.B) {
			x := randInferBatch(rand.New(rand.NewSource(3)), 9, batch)
			net.Forward(x, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Forward(x, false)
			}
		})
	}
}

func BenchmarkForwardEngine(b *testing.B) {
	_, eng := benchForwardNet(b)
	for _, batch := range []int{1, 16, 64} {
		batch := batch
		b.Run(map[int]string{1: "batch1", 16: "batch16", 64: "batch64"}[batch], func(b *testing.B) {
			x := randInferBatch(rand.New(rand.NewSource(3)), 9, batch)
			eng.Forward(x)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Forward(x)
			}
		})
	}
}
