package nn

import (
	"fmt"
	"math"

	"github.com/scidata/errprop/internal/tensor"
)

// MaxPool2D takes the maximum over non-overlapping KxK windows
// (stride == K). With disjoint windows the operator is 1-Lipschitz in
// both L2 and L-infinity — each output error is dominated by some input
// error in its own window — so it slots into the error-flow analysis
// with C = 1.
type MaxPool2D struct {
	C, H, W int
	K       int
	inBatch int
	argmax  []int // flat input index chosen per output element per sample
	name    string
}

// NewMaxPool2D builds a max-pooling layer; H and W must divide by K.
func NewMaxPool2D(name string, c, h, w, k int) *MaxPool2D {
	if h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("nn: maxpool %dx%d not divisible by %d", h, w, k))
	}
	return &MaxPool2D{C: c, H: h, W: w, K: k, name: name}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.name }

// OutH returns the pooled height.
func (p *MaxPool2D) OutH() int { return p.H / p.K }

// OutW returns the pooled width.
func (p *MaxPool2D) OutW() int { return p.W / p.K }

// InDim returns the flattened input feature count.
func (p *MaxPool2D) InDim() int { return p.C * p.H * p.W }

// OutDim returns the flattened output feature count.
func (p *MaxPool2D) OutDim() int { return p.C * p.OutH() * p.OutW() }

// Lipschitz implements Lipschitzer: 1 for disjoint windows.
func (p *MaxPool2D) Lipschitz() float64 { return 1 }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Rows != p.InDim() {
		panic(fmt.Sprintf("nn: %s input rows %d != %d", p.name, x.Rows, p.InDim()))
	}
	batch := x.Cols
	oh, ow := p.OutH(), p.OutW()
	//lint:ignore hotalloc legacy per-call layer path; the compiled engine (infer.go) is the zero-alloc fast path
	out := tensor.NewMatrix(p.C*oh*ow, batch)
	if train {
		p.inBatch = batch
		p.argmax = make([]int, p.C*oh*ow*batch)
	}
	for c := 0; c < p.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := ((c*oh+oy)*ow + ox) * batch
				for n := 0; n < batch; n++ {
					best := math.Inf(-1)
					bestF := -1
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							f := (c*p.H+oy*p.K+ky)*p.W + ox*p.K + kx
							if v := x.Data[f*batch+n]; v > best {
								best, bestF = v, f
							}
						}
					}
					out.Data[dst+n] = best
					if train {
						p.argmax[dst+n] = bestF
					}
				}
			}
		}
	}
	return out
}

// Backward implements Layer: gradients route to the argmax positions.
func (p *MaxPool2D) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if p.argmax == nil {
		panic("nn: maxpool Backward before Forward(train)")
	}
	batch := p.inBatch
	out := tensor.NewMatrix(p.InDim(), batch)
	for i, g := range grad.Data {
		n := i % batch
		out.Data[p.argmax[i]*batch+n] += g
	}
	return out
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }
