package nn

// program.go is the pure, serializable half of the inference compiler.
//
// CompileInference historically walked the layer graph and built runnable
// ops in one pass. That pass is now split in two:
//
//   - CompileProgram performs the structural walk — static shape
//     inference, the activation-fusion peephole, arena-slot allocation —
//     and emits a Program: a flat, batch-independent, byte-serializable
//     description of the op sequence. Compiling the same network always
//     yields the same Program, byte for byte.
//   - Program.Bind resolves a Program against a live network: it
//     validates every op against the layer it references, allocates the
//     per-lane buffer arenas for a (maxBatch, shards) geometry, and
//     produces a runnable Engine.
//
// The split is what makes ahead-of-time artifacts possible: a Program
// round-trips through EncodeBinary/DecodeProgram, travels inside an
// artifact next to the serialized network, and Bind reconstructs exactly
// the engine a from-spec compile would have produced. CompileInference
// itself is now CompileProgram + Bind — one compiler, two entry points.

import (
	"encoding/binary"
	"fmt"

	"github.com/scidata/errprop/internal/tensor"
)

// OpKind discriminates Program ops. The numeric values are part of the
// serialized program format; add new kinds at the end only.
type OpKind uint8

const (
	OpDense OpKind = iota
	OpConv
	OpAct
	OpRound
	OpMaxPool
	OpAvgPool
	OpGAP
	OpUpsample
	OpBatchNorm
	OpAttention
	OpAdd
	OpConcat
	opKindCount
)

// opKindNames labels kinds in Bind/decode errors.
var opKindNames = [...]string{
	"dense", "conv", "act", "round", "maxpool", "avgpool", "gap",
	"upsample", "batchnorm", "attention", "add", "concat",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// ProgOp is one step of a Program. Slot indices refer to
// Program.SlotRows; layer indices refer to the network's pre-order layer
// flattening (each layer of a sequence in order, then for a Residual its
// Branch then Shortcut sublayers, for a SkipConcat its Branch sublayers).
type ProgOp struct {
	Kind OpKind
	// Layer is the pre-order flatten index of the layer this op executes.
	Layer int32
	// Act is the flatten index of the activation fused into this op's
	// write loop, or -1 when none was fused.
	Act int32
	// In is the primary input slot (for OpAdd, the branch operand).
	In int32
	// Aux is the secondary input slot — OpAdd's shortcut operand,
	// OpConcat's branch — or -1 for ops with a single input.
	Aux int32
	// Out is the output slot.
	Out int32
}

// Program is a compiled inference plan in pure data form: no layer
// pointers, no scratch buffers, nothing batch-dependent. It is the
// deterministic, encodable vocabulary the golden *.program dumps render
// (Engine.Program), and the form an ahead-of-time artifact embeds.
type Program struct {
	// InDim and OutDim are the flattened input/output feature counts
	// (static shape inference; no data probe).
	InDim, OutDim int
	// Out is the arena slot holding the network output after the last op.
	Out int
	// SlotRows is each arena slot's feature count; slot 0 is the input.
	SlotRows []int
	// Ops is the op sequence, executed in order.
	Ops []ProgOp
}

// flattenLayers appends the layer tree in pre-order: each layer, then a
// Residual's Branch and Shortcut sublayers, then a SkipConcat's Branch
// sublayers. CompileProgram assigns ProgOp.Layer indices in exactly this
// order, so Bind can resolve them against any structurally identical
// network.
func flattenLayers(layers []Layer, out []Layer) []Layer {
	for _, l := range layers {
		out = append(out, l)
		switch t := l.(type) {
		case *Residual:
			out = flattenLayers(t.Branch, out)
			out = flattenLayers(t.Shortcut, out)
		case *SkipConcat:
			out = flattenLayers(t.Branch, out)
		}
	}
	return out
}

// programBuilder accumulates ops and arena slot shapes during the
// structural compile walk, assigning pre-order layer indices as it goes.
type programBuilder struct {
	slotRows  []int
	ops       []ProgOp
	nextLayer int32
}

// alloc reserves an arena slot of the given feature count.
func (b *programBuilder) alloc(rows int) int {
	b.slotRows = append(b.slotRows, rows)
	return len(b.slotRows) - 1
}

// layerIdx consumes the next pre-order layer index; calls must mirror
// flattenLayers' append order exactly.
func (b *programBuilder) layerIdx() int32 {
	i := b.nextLayer
	b.nextLayer++
	return i
}

func (b *programBuilder) emit(op ProgOp) { b.ops = append(b.ops, op) }

// CompileProgram runs the structural half of the inference compiler:
// shape inference, activation fusion, and slot allocation, with the same
// failure modes (and error text) as CompileInference. The resulting
// Program is independent of batch geometry; Bind turns it into an Engine.
func CompileProgram(net *Network) (*Program, error) {
	if net == nil {
		return nil, fmt.Errorf("nn: CompileInference: nil network")
	}
	if net.InputDim <= 0 {
		return nil, fmt.Errorf("nn: CompileInference: network input dim %d is not statically known", net.InputDim)
	}
	b := &programBuilder{}
	b.slotRows = append(b.slotRows, net.InputDim) // slot 0: the input
	out, rows, err := b.seq(net.Layers, 0, net.InputDim, "layers")
	if err != nil {
		return nil, err
	}
	return &Program{
		InDim:    net.InputDim,
		OutDim:   rows,
		Out:      out,
		SlotRows: b.slotRows,
		Ops:      b.ops,
	}, nil
}

// seq compiles a layer sequence reading from arena slot in with rows
// features; it returns the slot and feature count of the sequence output.
// path annotates errors like Spec.Validate does. An Activation directly
// following a fusable op is folded into that op's write loop (the
// peephole the golden program dumps make reviewable); the folded
// activation still consumes its pre-order layer index.
func (b *programBuilder) seq(layers []Layer, in, rows int, path string) (int, int, error) {
	cur, curRows := in, rows
	for i := 0; i < len(layers); i++ {
		l := layers[i]
		fuse := false
		if i+1 < len(layers) && fusableWithAct(l) {
			if _, ok := layers[i+1].(*Activation); ok {
				fuse = true
			}
		}
		var err error
		cur, curRows, err = b.layer(l, cur, curRows, fmt.Sprintf("%s[%d]", path, i))
		if err != nil {
			return 0, 0, err
		}
		if fuse {
			// The fused activation is layers[i+1], appended to the flatten
			// order after l's entire subtree — which b.layer just consumed —
			// so its index is simply the next one.
			b.ops[len(b.ops)-1].Act = b.layerIdx()
			i++
		}
	}
	return cur, curRows, nil
}

func (b *programBuilder) layer(l Layer, in, rows int, path string) (int, int, error) {
	idx := b.layerIdx()
	mismatch := func(name string, want int) error {
		return fmt.Errorf("nn: CompileInference: %s (%s): input dim %d does not chain, layer wants %d", path, name, rows, want)
	}
	simple := func(kind OpKind, outRows int) (int, int, error) {
		out := b.alloc(outRows)
		b.emit(ProgOp{Kind: kind, Layer: idx, Act: -1, In: int32(in), Aux: -1, Out: int32(out)})
		return out, outRows, nil
	}
	switch t := l.(type) {
	case *Dense:
		if rows != t.In {
			return 0, 0, mismatch(t.name, t.In)
		}
		return simple(OpDense, t.Out)
	case *Conv2D:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		return simple(OpConv, t.OutC*t.OutH()*t.OutW())
	case *Activation:
		return simple(OpAct, rows)
	case *RoundLayer:
		return simple(OpRound, rows)
	case *MaxPool2D:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		return simple(OpMaxPool, t.OutDim())
	case *AvgPool2D:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		return simple(OpAvgPool, t.OutDim())
	case *GlobalAvgPool:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		return simple(OpGAP, t.OutDim())
	case *Upsample2D:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		return simple(OpUpsample, t.OutDim())
	case *BatchNorm2D:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		return simple(OpBatchNorm, rows)
	case *SelfAttention:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		return simple(OpAttention, t.InDim())
	case *Residual:
		fOut, fRows, err := b.seq(t.Branch, in, rows, path+".branch")
		if err != nil {
			return 0, 0, err
		}
		sOut, sRows := in, rows
		if len(t.Shortcut) > 0 {
			sOut, sRows, err = b.seq(t.Shortcut, in, rows, path+".shortcut")
			if err != nil {
				return 0, 0, err
			}
		}
		if fRows != sRows {
			return 0, 0, fmt.Errorf("nn: CompileInference: %s (%s): branch output %d != shortcut output %d", path, t.name, fRows, sRows)
		}
		out := b.alloc(fRows)
		b.emit(ProgOp{Kind: OpAdd, Layer: idx, Act: -1, In: int32(fOut), Aux: int32(sOut), Out: int32(out)})
		return out, fRows, nil
	case *SkipConcat:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		bOut, bRows, err := b.seq(t.Branch, in, rows, path+".branch")
		if err != nil {
			return 0, 0, err
		}
		if want := t.BC * t.H * t.W; bRows != want {
			return 0, 0, fmt.Errorf("nn: CompileInference: %s (%s): branch produced %d rows, want %d", path, t.name, bRows, want)
		}
		out := b.alloc(t.OutDim())
		b.emit(ProgOp{Kind: OpConcat, Layer: idx, Act: -1, In: int32(in), Aux: int32(bOut), Out: int32(out)})
		return out, t.OutDim(), nil
	}
	return 0, 0, fmt.Errorf("nn: CompileInference: %s: unsupported layer type %T (%s)", path, l, l.Name())
}

// Bind resolves the program against net and materializes a runnable
// Engine with buffers for maxBatch-column inputs split across shards
// lanes. Every op is validated against the layer it references — index
// range, layer type, slot shapes — so a program decoded from an artifact
// cannot silently bind to a structurally different network; a mismatch
// is a typed error, never a wrong answer.
func (p *Program) Bind(net *Network, maxBatch, shards int) (*Engine, error) {
	if net == nil {
		return nil, fmt.Errorf("nn: Program.Bind: nil network")
	}
	if maxBatch <= 0 {
		return nil, fmt.Errorf("nn: Program.Bind: maxBatch %d must be positive", maxBatch)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("nn: Program.Bind: shards %d must be positive", shards)
	}
	if p.InDim != net.InputDim {
		return nil, fmt.Errorf("nn: Program.Bind: program input dim %d != network input dim %d", p.InDim, net.InputDim)
	}
	if len(p.SlotRows) == 0 || p.SlotRows[0] != p.InDim {
		return nil, fmt.Errorf("nn: Program.Bind: slot 0 must hold the %d-feature input", p.InDim)
	}
	for i, r := range p.SlotRows {
		if r <= 0 {
			return nil, fmt.Errorf("nn: Program.Bind: slot %d has non-positive row count %d", i, r)
		}
	}
	if p.Out < 0 || p.Out >= len(p.SlotRows) || p.SlotRows[p.Out] != p.OutDim {
		return nil, fmt.Errorf("nn: Program.Bind: output slot %d inconsistent with output dim %d", p.Out, p.OutDim)
	}
	flat := flattenLayers(net.Layers, nil)
	if shards > maxBatch {
		shards = maxBatch
	}
	laneWidth := (maxBatch + shards - 1) / shards
	e := &Engine{inDim: p.InDim, outDim: p.OutDim, maxBatch: maxBatch}
	for l := 0; l < shards; l++ {
		ops, err := p.bindOps(flat, laneWidth)
		if err != nil {
			return nil, err
		}
		ln := &lane{eng: e, ops: ops, out: p.Out}
		// One slab per lane; every arena slot is a capped slice of it, so
		// slot growth can never silently overlap a neighbor.
		total := 0
		for _, r := range p.SlotRows {
			total += r * laneWidth
		}
		slab := make([]float64, total)
		off := 0
		for _, r := range p.SlotRows {
			sz := r * laneWidth
			ln.bufs = append(ln.bufs, tensor.NewMatrixFrom(r, laneWidth, slab[off:off+sz:off+sz]))
			off += sz
		}
		ln.in0 = ln.bufs[0]
		ln.start = func() {
			ln.exec()
			e.wg.Done()
		}
		e.lanes = append(e.lanes, ln)
	}
	if shards > 1 {
		e.outM = tensor.NewMatrix(e.outDim, maxBatch)
	}
	return e, nil
}

// bindOps builds one lane's runnable op list (ops carry per-call scratch
// such as PSN effective weights and attention workspaces, so they cannot
// be shared across lanes), validating every program reference against
// the flattened layer list.
func (p *Program) bindOps(flat []Layer, laneWidth int) ([]inferOp, error) {
	nSlots := len(p.SlotRows)
	ops := make([]inferOp, 0, len(p.Ops))
	for i := range p.Ops {
		po := &p.Ops[i]
		fail := func(format string, args ...any) error {
			return fmt.Errorf("nn: Program.Bind: op %d (%s): %s", i, po.Kind, fmt.Sprintf(format, args...))
		}
		slot := func(s int32, what string) (int, error) {
			if s < 0 || int(s) >= nSlots {
				return 0, fail("%s slot %d out of range (%d slots)", what, s, nSlots)
			}
			return int(s), nil
		}
		in, err := slot(po.In, "input")
		if err != nil {
			return nil, err
		}
		out, err := slot(po.Out, "output")
		if err != nil {
			return nil, err
		}
		aux := -1
		if po.Kind == OpAdd || po.Kind == OpConcat {
			if aux, err = slot(po.Aux, "aux input"); err != nil {
				return nil, err
			}
		}
		if po.Layer < 0 || int(po.Layer) >= len(flat) {
			return nil, fail("layer index %d out of range (%d layers)", po.Layer, len(flat))
		}
		l := flat[po.Layer]
		var act *Activation
		if po.Act >= 0 {
			if int(po.Act) >= len(flat) {
				return nil, fail("fused-activation index %d out of range (%d layers)", po.Act, len(flat))
			}
			a, ok := flat[po.Act].(*Activation)
			if !ok {
				return nil, fail("fused-activation index %d names a %T, not an activation", po.Act, flat[po.Act])
			}
			if !fusableWithAct(l) {
				return nil, fail("layer %T cannot carry a fused activation", l)
			}
			act = a
		}
		rowsOK := func(slotIdx, want int, what string) error {
			if p.SlotRows[slotIdx] != want {
				return fail("%s slot %d holds %d rows, layer %q wants %d", what, slotIdx, p.SlotRows[slotIdx], l.Name(), want)
			}
			return nil
		}
		mistyped := func(want string) error {
			return fail("layer index %d names a %T, want %s", po.Layer, l, want)
		}

		switch po.Kind {
		case OpDense:
			t, ok := l.(*Dense)
			if !ok {
				return nil, mistyped("*nn.Dense")
			}
			if err := rowsOK(in, t.In, "input"); err != nil {
				return nil, err
			}
			if err := rowsOK(out, t.Out, "output"); err != nil {
				return nil, err
			}
			op := &opDense{l: t, in: in, out: out, act: act}
			if t.PSN {
				t.ensureSigma()
				op.w = tensor.NewMatrix(t.Out, t.In)
			} else {
				op.w = t.rawMatrix() // shared view of live weights
			}
			ops = append(ops, op)
		case OpConv:
			t, ok := l.(*Conv2D)
			if !ok {
				return nil, mistyped("*nn.Conv2D")
			}
			spatial := t.OutH() * t.OutW()
			if err := rowsOK(in, t.InDim(), "input"); err != nil {
				return nil, err
			}
			if err := rowsOK(out, t.OutC*spatial, "output"); err != nil {
				return nil, err
			}
			op := &opConv{
				l:       t,
				in:      in,
				out:     out,
				act:     act,
				outC:    t.OutC,
				spatial: spatial,
				k2c:     t.InC * t.K * t.K,
				offs:    convTapOffsets(t),
				zeros:   make([]float64, laneWidth),
			}
			if t.PSN {
				t.ensureSigma()
				op.kw = tensor.NewMatrix(t.OutC, t.InC*t.K*t.K)
			} else {
				op.kw = t.rawMatrix()
			}
			ops = append(ops, op)
		case OpAct:
			t, ok := l.(*Activation)
			if !ok {
				return nil, mistyped("*nn.Activation")
			}
			if err := rowsOK(out, p.SlotRows[in], "output"); err != nil {
				return nil, err
			}
			ops = append(ops, &opAct{l: t, in: in, out: out})
		case OpRound:
			t, ok := l.(*RoundLayer)
			if !ok {
				return nil, mistyped("*nn.RoundLayer")
			}
			if err := rowsOK(out, p.SlotRows[in], "output"); err != nil {
				return nil, err
			}
			ops = append(ops, &opRound{l: t, in: in, out: out})
		case OpMaxPool:
			t, ok := l.(*MaxPool2D)
			if !ok {
				return nil, mistyped("*nn.MaxPool2D")
			}
			if err := rowsOK(in, t.InDim(), "input"); err != nil {
				return nil, err
			}
			if err := rowsOK(out, t.OutDim(), "output"); err != nil {
				return nil, err
			}
			ops = append(ops, &opMaxPool{l: t, in: in, out: out})
		case OpAvgPool:
			t, ok := l.(*AvgPool2D)
			if !ok {
				return nil, mistyped("*nn.AvgPool2D")
			}
			if err := rowsOK(in, t.InDim(), "input"); err != nil {
				return nil, err
			}
			if err := rowsOK(out, t.OutDim(), "output"); err != nil {
				return nil, err
			}
			ops = append(ops, &opAvgPool{l: t, in: in, out: out})
		case OpGAP:
			t, ok := l.(*GlobalAvgPool)
			if !ok {
				return nil, mistyped("*nn.GlobalAvgPool")
			}
			if err := rowsOK(in, t.InDim(), "input"); err != nil {
				return nil, err
			}
			if err := rowsOK(out, t.OutDim(), "output"); err != nil {
				return nil, err
			}
			ops = append(ops, &opGAP{l: t, in: in, out: out})
		case OpUpsample:
			t, ok := l.(*Upsample2D)
			if !ok {
				return nil, mistyped("*nn.Upsample2D")
			}
			if err := rowsOK(in, t.InDim(), "input"); err != nil {
				return nil, err
			}
			if err := rowsOK(out, t.OutDim(), "output"); err != nil {
				return nil, err
			}
			ops = append(ops, &opUpsample{l: t, in: in, out: out})
		case OpBatchNorm:
			t, ok := l.(*BatchNorm2D)
			if !ok {
				return nil, mistyped("*nn.BatchNorm2D")
			}
			if err := rowsOK(in, t.InDim(), "input"); err != nil {
				return nil, err
			}
			if err := rowsOK(out, t.InDim(), "output"); err != nil {
				return nil, err
			}
			ops = append(ops, &opBatchNorm{l: t, in: in, out: out, act: act})
		case OpAttention:
			t, ok := l.(*SelfAttention)
			if !ok {
				return nil, mistyped("*nn.SelfAttention")
			}
			if err := rowsOK(in, t.InDim(), "input"); err != nil {
				return nil, err
			}
			if err := rowsOK(out, t.InDim(), "output"); err != nil {
				return nil, err
			}
			ops = append(ops, &opAttention{
				l: t, in: in, out: out, act: act,
				// Shared views of the live projection weights.
				wq: tensor.NewMatrixFrom(t.D, t.D, t.Wq.Data),
				wk: tensor.NewMatrixFrom(t.D, t.D, t.Wk.Data),
				wv: tensor.NewMatrixFrom(t.D, t.D, t.Wv.Data),
				// Per-sample scratch; sizes are batch-independent.
				xs: tensor.NewMatrix(t.T, t.D), q: tensor.NewMatrix(t.T, t.D),
				k: tensor.NewMatrix(t.T, t.D), v: tensor.NewMatrix(t.T, t.D),
				kt: tensor.NewMatrix(t.D, t.T), scores: tensor.NewMatrix(t.T, t.T),
				scoresT: tensor.NewMatrix(t.T, t.T), aT: tensor.NewMatrix(t.T, t.T),
				a: tensor.NewMatrix(t.T, t.T), y: tensor.NewMatrix(t.T, t.D),
			})
		case OpAdd:
			if _, ok := l.(*Residual); !ok {
				return nil, mistyped("*nn.Residual")
			}
			if p.SlotRows[in] != p.SlotRows[aux] || p.SlotRows[in] != p.SlotRows[out] {
				return nil, fail("add over mismatched slot shapes %d + %d -> %d",
					p.SlotRows[in], p.SlotRows[aux], p.SlotRows[out])
			}
			ops = append(ops, &opAdd{a: in, b: aux, out: out, act: act})
		case OpConcat:
			t, ok := l.(*SkipConcat)
			if !ok {
				return nil, mistyped("*nn.SkipConcat")
			}
			if err := rowsOK(in, t.InDim(), "input"); err != nil {
				return nil, err
			}
			if err := rowsOK(aux, t.BC*t.H*t.W, "branch"); err != nil {
				return nil, err
			}
			if err := rowsOK(out, t.OutDim(), "output"); err != nil {
				return nil, err
			}
			ops = append(ops, &opConcat{xRows: t.InDim(), in: in, branch: aux, out: out})
		default:
			return nil, fail("unknown op kind")
		}
	}
	return ops, nil
}

// Program serialization: a canonical fixed-width little-endian encoding.
// Every field is a u32 (signed fields use two's complement), so any
// decodable byte string re-encodes to itself — the byte-bijection
// property the artifact container and its fuzz target rely on.
const (
	maxProgramSlots = 1 << 20
	maxProgramOps   = 1 << 20
)

// AppendBinary appends the program's canonical encoding to dst.
func (p *Program) AppendBinary(dst []byte) []byte {
	var u [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(u[:], v)
		dst = append(dst, u[:]...)
	}
	put(uint32(p.InDim))
	put(uint32(p.OutDim))
	put(uint32(p.Out))
	put(uint32(len(p.SlotRows)))
	for _, r := range p.SlotRows {
		put(uint32(r))
	}
	put(uint32(len(p.Ops)))
	for _, op := range p.Ops {
		dst = append(dst, byte(op.Kind))
		put(uint32(op.Layer))
		put(uint32(op.Act))
		put(uint32(op.In))
		put(uint32(op.Aux))
		put(uint32(op.Out))
	}
	return dst
}

// EncodeBinary returns the program's canonical encoding.
func (p *Program) EncodeBinary() []byte { return p.AppendBinary(nil) }

// progReader is a little cursor over a program encoding.
type progReader struct {
	raw []byte
	off int
	err error
}

func (r *progReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.raw) {
		r.err = fmt.Errorf("nn: DecodeProgram: truncated at byte %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.raw[r.off:])
	r.off += 4
	return v
}

func (r *progReader) i32() int32 { return int32(r.u32()) }

func (r *progReader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.raw) {
		r.err = fmt.Errorf("nn: DecodeProgram: truncated at byte %d", r.off)
		return 0
	}
	v := r.raw[r.off]
	r.off++
	return v
}

// DecodeProgram parses a canonical program encoding. It rejects unknown
// op kinds, oversized tables, truncation, and trailing bytes; semantic
// validation against a concrete network happens in Bind.
func DecodeProgram(raw []byte) (*Program, error) {
	r := &progReader{raw: raw}
	p := &Program{
		InDim:  int(r.u32()),
		OutDim: int(r.u32()),
		Out:    int(r.u32()),
	}
	nSlots := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if nSlots > maxProgramSlots {
		return nil, fmt.Errorf("nn: DecodeProgram: %d slots exceeds cap %d", nSlots, maxProgramSlots)
	}
	p.SlotRows = make([]int, nSlots)
	for i := range p.SlotRows {
		p.SlotRows[i] = int(r.u32())
	}
	nOps := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if nOps > maxProgramOps {
		return nil, fmt.Errorf("nn: DecodeProgram: %d ops exceeds cap %d", nOps, maxProgramOps)
	}
	p.Ops = make([]ProgOp, nOps)
	for i := range p.Ops {
		op := &p.Ops[i]
		op.Kind = OpKind(r.u8())
		if op.Kind >= opKindCount {
			return nil, fmt.Errorf("nn: DecodeProgram: op %d has unknown kind %d", i, op.Kind)
		}
		op.Layer = r.i32()
		op.Act = r.i32()
		op.In = r.i32()
		op.Aux = r.i32()
		op.Out = r.i32()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(raw) {
		return nil, fmt.Errorf("nn: DecodeProgram: %d trailing bytes after program", len(raw)-r.off)
	}
	return p, nil
}
