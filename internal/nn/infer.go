package nn

import (
	"fmt"
	"math"

	"github.com/scidata/errprop/internal/tensor"
)

// Engine is a compiled plan-once/execute-many inference program for a
// Network. CompileInference walks the layer graph once, performs static
// shape inference, and emits a flat op sequence over a preallocated
// buffer arena sized for maxBatch columns; Forward then replays the
// program with zero steady-state heap allocations.
//
// Two invariants make the engine safe to deploy under certified error
// bounds (DESIGN.md "Bit-identical fast paths"):
//
//   - Bit-identity: every op replicates the corresponding layer's
//     eval-mode Forward arithmetic exactly — same kernels, same
//     accumulation order, same degenerate-case branches — so
//     Engine.Forward output is == (not merely close to) the legacy
//     Network.Forward output for any input. Inequality (3) certificates
//     computed against the reference network therefore transfer to the
//     engine verbatim.
//   - Shared weights: ops hold read-only views into the source network's
//     parameter storage (PSN layers get a private effective-weight
//     scratch recomputed per call from the live alpha/sigma state), so N
//     engines over one network cost no N-fold weight duplication, and a
//     weight update to the network is visible to every engine.
//
// An Engine is not safe for concurrent use (its arena is mutable state);
// compile one per goroutine — they are cheap, sharing all weights.
// Batches wider than maxBatch still work: the arena grows once to the
// new high-water mark (that growth allocates).
type Engine struct {
	inDim, outDim, maxBatch int

	ops  []inferOp
	bufs []*tensor.Matrix // bufs[0] is the caller's input for the current call
	out  int              // arena index of the network output
}

// inferOp is one step of the compiled program: read from arena slots,
// write to an arena slot, allocation-free at steady state.
type inferOp interface {
	run(e *Engine, batch int)
}

// CompileInference compiles net into an inference engine with buffers
// sized for maxBatch-column inputs. It fails — rather than degrading to
// a slow path — if the network contains a layer type the compiler does
// not model or if the input dimension is not statically known.
//
// Compilation finalizes PSN spectral-norm estimates (ensureSigma), so a
// compiled engine's Forward never mutates the source network; multiple
// engines may share one network across goroutines.
func CompileInference(net *Network, maxBatch int) (*Engine, error) {
	if net == nil {
		return nil, fmt.Errorf("nn: CompileInference: nil network")
	}
	if maxBatch <= 0 {
		return nil, fmt.Errorf("nn: CompileInference: maxBatch %d must be positive", maxBatch)
	}
	if net.InputDim <= 0 {
		return nil, fmt.Errorf("nn: CompileInference: network input dim %d is not statically known", net.InputDim)
	}
	b := &engineBuilder{maxBatch: maxBatch}
	b.bufs = append(b.bufs, nil) // slot 0: caller's input, bound per Forward
	out, rows, err := b.compileSeq(net.Layers, 0, net.InputDim, "layers")
	if err != nil {
		return nil, err
	}
	return &Engine{
		inDim:    net.InputDim,
		outDim:   rows,
		maxBatch: maxBatch,
		ops:      b.ops,
		bufs:     b.bufs,
		out:      out,
	}, nil
}

// Forward executes the compiled program on a (features x batch) matrix.
// The returned matrix is owned by the engine and valid only until the
// next Forward call; clone it to retain. Output is bit-identical to
// Network.Forward(x, false) on the source network.
//
//errprop:deterministic compiled plan replays the exact float schedule of the source network
func (e *Engine) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Rows != e.inDim {
		panic(fmt.Sprintf("nn: engine input rows %d != %d", x.Rows, e.inDim))
	}
	e.bufs[0] = x
	for _, op := range e.ops {
		op.run(e, x.Cols)
	}
	return e.bufs[e.out]
}

// InputDim returns the engine's flattened input feature count.
func (e *Engine) InputDim() int { return e.inDim }

// OutputDim returns the engine's flattened output feature count,
// computed by static shape inference at compile time — no data probe.
func (e *Engine) OutputDim() int { return e.outDim }

// MaxBatch returns the batch width the arena was preallocated for.
func (e *Engine) MaxBatch() int { return e.maxBatch }

// engineBuilder accumulates the op program and buffer arena during
// compilation.
type engineBuilder struct {
	maxBatch int
	bufs     []*tensor.Matrix
	ops      []inferOp
}

// alloc reserves an arena slot of the given feature count, preallocated
// to the engine's maxBatch width.
func (b *engineBuilder) alloc(rows int) int {
	b.bufs = append(b.bufs, tensor.NewMatrix(rows, b.maxBatch))
	return len(b.bufs) - 1
}

// compileSeq compiles a layer sequence reading from arena slot in with
// rows features; it returns the slot and feature count of the sequence
// output. path annotates errors like Spec.Validate does.
func (b *engineBuilder) compileSeq(layers []Layer, in, rows int, path string) (int, int, error) {
	cur, curRows := in, rows
	for i, l := range layers {
		var err error
		cur, curRows, err = b.compileLayer(l, cur, curRows, fmt.Sprintf("%s[%d]", path, i))
		if err != nil {
			return 0, 0, err
		}
	}
	return cur, curRows, nil
}

func (b *engineBuilder) compileLayer(l Layer, in, rows int, path string) (int, int, error) {
	mismatch := func(name string, want int) error {
		return fmt.Errorf("nn: CompileInference: %s (%s): input dim %d does not chain, layer wants %d", path, name, rows, want)
	}
	switch t := l.(type) {
	case *Dense:
		if rows != t.In {
			return 0, 0, mismatch(t.name, t.In)
		}
		op := &opDense{l: t, in: in, out: b.alloc(t.Out)}
		if t.PSN {
			t.ensureSigma()
			op.w = tensor.NewMatrix(t.Out, t.In)
		} else {
			op.w = t.rawMatrix() // shared view of live weights
		}
		b.ops = append(b.ops, op)
		return op.out, t.Out, nil
	case *Conv2D:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		spatial := t.OutH() * t.OutW()
		op := &opConv{
			l:    t,
			in:   in,
			out:  b.alloc(t.OutC * spatial),
			cols: tensor.NewMatrix(t.InC*t.K*t.K, b.maxBatch*spatial),
			z:    tensor.NewMatrix(t.OutC, b.maxBatch*spatial),
		}
		if t.PSN {
			t.ensureSigma()
			op.kw = tensor.NewMatrix(t.OutC, t.InC*t.K*t.K)
		} else {
			op.kw = t.rawMatrix()
		}
		b.ops = append(b.ops, op)
		return op.out, t.OutC * spatial, nil
	case *Activation:
		op := &opAct{l: t, in: in, out: b.alloc(rows)}
		b.ops = append(b.ops, op)
		return op.out, rows, nil
	case *RoundLayer:
		op := &opRound{l: t, in: in, out: b.alloc(rows)}
		b.ops = append(b.ops, op)
		return op.out, rows, nil
	case *MaxPool2D:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		op := &opMaxPool{l: t, in: in, out: b.alloc(t.OutDim())}
		b.ops = append(b.ops, op)
		return op.out, t.OutDim(), nil
	case *AvgPool2D:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		op := &opAvgPool{l: t, in: in, out: b.alloc(t.OutDim())}
		b.ops = append(b.ops, op)
		return op.out, t.OutDim(), nil
	case *GlobalAvgPool:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		op := &opGAP{l: t, in: in, out: b.alloc(t.OutDim())}
		b.ops = append(b.ops, op)
		return op.out, t.OutDim(), nil
	case *Upsample2D:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		op := &opUpsample{l: t, in: in, out: b.alloc(t.OutDim())}
		b.ops = append(b.ops, op)
		return op.out, t.OutDim(), nil
	case *BatchNorm2D:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		op := &opBatchNorm{l: t, in: in, out: b.alloc(rows)}
		b.ops = append(b.ops, op)
		return op.out, rows, nil
	case *SelfAttention:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		op := &opAttention{
			l: t, in: in, out: b.alloc(t.InDim()),
			// Shared views of the live projection weights.
			wq: tensor.NewMatrixFrom(t.D, t.D, t.Wq.Data),
			wk: tensor.NewMatrixFrom(t.D, t.D, t.Wk.Data),
			wv: tensor.NewMatrixFrom(t.D, t.D, t.Wv.Data),
			// Per-sample scratch; sizes are batch-independent.
			xs: tensor.NewMatrix(t.T, t.D), q: tensor.NewMatrix(t.T, t.D),
			k: tensor.NewMatrix(t.T, t.D), v: tensor.NewMatrix(t.T, t.D),
			kt: tensor.NewMatrix(t.D, t.T), scores: tensor.NewMatrix(t.T, t.T),
			scoresT: tensor.NewMatrix(t.T, t.T), aT: tensor.NewMatrix(t.T, t.T),
			a: tensor.NewMatrix(t.T, t.T), y: tensor.NewMatrix(t.T, t.D),
		}
		b.ops = append(b.ops, op)
		return op.out, t.InDim(), nil
	case *Residual:
		fOut, fRows, err := b.compileSeq(t.Branch, in, rows, path+".branch")
		if err != nil {
			return 0, 0, err
		}
		sOut, sRows := in, rows
		if len(t.Shortcut) > 0 {
			sOut, sRows, err = b.compileSeq(t.Shortcut, in, rows, path+".shortcut")
			if err != nil {
				return 0, 0, err
			}
		}
		if fRows != sRows {
			return 0, 0, fmt.Errorf("nn: CompileInference: %s (%s): branch output %d != shortcut output %d", path, t.name, fRows, sRows)
		}
		op := &opAdd{a: fOut, b: sOut, out: b.alloc(fRows)}
		b.ops = append(b.ops, op)
		return op.out, fRows, nil
	case *SkipConcat:
		if rows != t.InDim() {
			return 0, 0, mismatch(t.name, t.InDim())
		}
		bOut, bRows, err := b.compileSeq(t.Branch, in, rows, path+".branch")
		if err != nil {
			return 0, 0, err
		}
		if want := t.BC * t.H * t.W; bRows != want {
			return 0, 0, fmt.Errorf("nn: CompileInference: %s (%s): branch produced %d rows, want %d", path, t.name, bRows, want)
		}
		op := &opConcat{xRows: rows, in: in, branch: bOut, out: b.alloc(t.OutDim())}
		b.ops = append(b.ops, op)
		return op.out, t.OutDim(), nil
	}
	return 0, 0, fmt.Errorf("nn: CompileInference: %s: unsupported layer type %T (%s)", path, l, l.Name())
}

// ensure resizes arena slot i to rows x batch (reusing the preallocated
// backing at steady state) and returns it.
func (e *Engine) ensure(i, rows, batch int) *tensor.Matrix {
	m := tensor.EnsureMatrix(e.bufs[i], rows, batch)
	e.bufs[i] = m
	return m
}

// opDense replicates Dense.Forward's eval path: w is the shared raw
// weight view for plain layers; under PSN it is a private scratch
// refreshed from the live alpha/sigma state each call, matching
// EffectiveMatrix (including the degenerate sigma == 0 raw-copy branch).
type opDense struct {
	l       *Dense
	w       *tensor.Matrix
	in, out int
}

func (o *opDense) run(e *Engine, batch int) {
	d := o.l
	if d.PSN {
		if d.sigmaRaw == 0 {
			copy(o.w.Data, d.W.Data)
		} else {
			s := d.Alpha.Data[0] / d.sigmaRaw
			for i, w := range d.W.Data {
				o.w.Data[i] = w * s
			}
		}
	}
	x := e.bufs[o.in]
	out := e.ensure(o.out, d.Out, batch)
	out = o.w.MulInto(x, out)
	for r := 0; r < out.Rows; r++ {
		b := d.B.Data[r]
		row := out.Data[r*out.Cols : (r+1)*out.Cols]
		for c := range row {
			row[c] += b
		}
	}
}

// opConv replicates Conv2D.Forward's eval path with the fused
// Im2ColMatInto kernel (bit-identical to matToT4 + Im2Col) and a
// PSN-aware effective kernel like opDense.
type opConv struct {
	l       *Conv2D
	kw      *tensor.Matrix
	cols, z *tensor.Matrix
	in, out int
}

func (o *opConv) run(e *Engine, batch int) {
	c := o.l
	if c.PSN {
		if c.sigmaRaw == 0 {
			copy(o.kw.Data, c.Wt.Data)
		} else {
			s := c.Alpha.Data[0] / c.sigmaRaw
			for i, w := range c.Wt.Data {
				o.kw.Data[i] = w * s
			}
		}
	}
	x := e.bufs[o.in]
	o.cols = tensor.Im2ColMatInto(x, c.InC, c.H, c.W, c.K, c.K, c.Stride, c.Pad, o.cols)
	o.z = o.kw.MulInto(o.cols, o.z)
	outH, outW := c.OutH(), c.OutW()
	spatial := outH * outW
	out := e.ensure(o.out, c.OutC*spatial, batch)
	for oc := 0; oc < c.OutC; oc++ {
		b := c.B.Data[oc]
		zrow := o.z.Data[oc*o.z.Cols : (oc+1)*o.z.Cols]
		for n := 0; n < batch; n++ {
			for s := 0; s < spatial; s++ {
				out.Data[(oc*spatial+s)*batch+n] = zrow[n*spatial+s] + b
			}
		}
	}
}

// opAct applies the activation elementwise via the same apply switch the
// legacy path uses.
type opAct struct {
	l       *Activation
	in, out int
}

func (o *opAct) run(e *Engine, batch int) {
	x := e.bufs[o.in]
	out := e.ensure(o.out, x.Rows, batch)
	for i, v := range x.Data {
		out.Data[i] = o.l.apply(v)
	}
}

// opRound applies activation-format rounding elementwise.
type opRound struct {
	l       *RoundLayer
	in, out int
}

func (o *opRound) run(e *Engine, batch int) {
	x := e.bufs[o.in]
	out := e.ensure(o.out, x.Rows, batch)
	for i, v := range x.Data {
		out.Data[i] = o.l.Format.Round(v)
	}
}

// opMaxPool replicates MaxPool2D.Forward (strict > keeps the same argmax
// tie-breaking, though only the max value is emitted here).
type opMaxPool struct {
	l       *MaxPool2D
	in, out int
}

func (o *opMaxPool) run(e *Engine, batch int) {
	p := o.l
	x := e.bufs[o.in]
	oh, ow := p.OutH(), p.OutW()
	out := e.ensure(o.out, p.C*oh*ow, batch)
	for c := 0; c < p.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := ((c*oh+oy)*ow + ox) * batch
				for n := 0; n < batch; n++ {
					best := math.Inf(-1)
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							f := (c*p.H+oy*p.K+ky)*p.W + ox*p.K + kx
							if v := x.Data[f*batch+n]; v > best {
								best = v
							}
						}
					}
					out.Data[dst+n] = best
				}
			}
		}
	}
}

// opAvgPool replicates AvgPool2D.Forward (same accumulation order, same
// multiply-by-reciprocal).
type opAvgPool struct {
	l       *AvgPool2D
	in, out int
}

func (o *opAvgPool) run(e *Engine, batch int) {
	p := o.l
	x := e.bufs[o.in]
	oh, ow := p.OutH(), p.OutW()
	out := e.ensure(o.out, p.C*oh*ow, batch)
	inv := 1 / float64(p.K*p.K)
	for c := 0; c < p.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := ((c*oh+oy)*ow + ox) * batch
				for n := 0; n < batch; n++ {
					var s float64
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							f := (c*p.H+oy*p.K+ky)*p.W + ox*p.K + kx
							s += x.Data[f*batch+n]
						}
					}
					out.Data[dst+n] = s * inv
				}
			}
		}
	}
}

// opGAP replicates GlobalAvgPool.Forward.
type opGAP struct {
	l       *GlobalAvgPool
	in, out int
}

func (o *opGAP) run(e *Engine, batch int) {
	p := o.l
	x := e.bufs[o.in]
	spatial := p.H * p.W
	inv := 1 / float64(spatial)
	out := e.ensure(o.out, p.C, batch)
	for c := 0; c < p.C; c++ {
		for n := 0; n < batch; n++ {
			var s float64
			for sp := 0; sp < spatial; sp++ {
				s += x.Data[(c*spatial+sp)*batch+n]
			}
			out.Data[c*batch+n] = s * inv
		}
	}
}

// opUpsample replicates Upsample2D.Forward (pure copies).
type opUpsample struct {
	l       *Upsample2D
	in, out int
}

func (o *opUpsample) run(e *Engine, batch int) {
	u := o.l
	x := e.bufs[o.in]
	oh, ow := 2*u.H, 2*u.W
	out := e.ensure(o.out, u.C*oh*ow, batch)
	for c := 0; c < u.C; c++ {
		for y := 0; y < u.H; y++ {
			for xx := 0; xx < u.W; xx++ {
				src := (c*u.H+y)*u.W + xx
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						dst := (c*oh+2*y+dy)*ow + 2*xx + dx
						copy(out.Data[dst*batch:(dst+1)*batch], x.Data[src*batch:(src+1)*batch])
					}
				}
			}
		}
	}
}

// opBatchNorm replicates BatchNorm2D.Forward's eval branch (frozen
// running statistics).
type opBatchNorm struct {
	l       *BatchNorm2D
	in, out int
}

func (o *opBatchNorm) run(e *Engine, batch int) {
	bn := o.l
	x := e.bufs[o.in]
	spatial := bn.H * bn.W
	out := e.ensure(o.out, x.Rows, batch)
	for c := 0; c < bn.C; c++ {
		mean := bn.RunMean.Data[c]
		varv := bn.RunVar.Data[c]
		inv := 1 / math.Sqrt(varv+bn.Eps)
		g, b := bn.Gamma.Data[c], bn.Beta.Data[c]
		for s := 0; s < spatial; s++ {
			base := (c*spatial + s) * batch
			for n := 0; n < batch; n++ {
				xh := (x.Data[base+n] - mean) * inv
				out.Data[base+n] = g*xh + b
			}
		}
	}
}

// opAttention replicates SelfAttention.Forward per sample using shared
// projection-weight views and preallocated T x D / T x T scratch. The
// transposes the legacy path materializes (k.T(), scores.T(), a = ...T())
// become TInto copies, and Softmax becomes softmaxInto — both pure data
// movements / identical arithmetic, preserving bit-identity.
type opAttention struct {
	l          *SelfAttention
	wq, wk, wv *tensor.Matrix

	xs, q, k, v         *tensor.Matrix
	kt, scores, scoresT *tensor.Matrix
	aT, a, y            *tensor.Matrix
	in, out             int
}

func (o *opAttention) run(e *Engine, batch int) {
	s := o.l
	x := e.bufs[o.in]
	out := e.ensure(o.out, s.InDim(), batch)
	invSqrtD := 1 / math.Sqrt(float64(s.D))
	for n := 0; n < batch; n++ {
		for t := 0; t < s.T; t++ {
			for d := 0; d < s.D; d++ {
				o.xs.Set(t, d, x.At(t*s.D+d, n))
			}
		}
		o.q = o.xs.MulInto(o.wq, o.q)
		o.k = o.xs.MulInto(o.wk, o.k)
		o.v = o.xs.MulInto(o.wv, o.v)
		o.kt = o.k.TInto(o.kt)
		o.scores = o.q.MulInto(o.kt, o.scores)
		o.scores.Scale(invSqrtD)
		o.scoresT = o.scores.TInto(o.scoresT)
		o.aT = softmaxInto(o.scoresT, o.aT)
		o.a = o.aT.TInto(o.a)
		o.y = o.a.MulInto(o.v, o.y)
		for t := 0; t < s.T; t++ {
			for d := 0; d < s.D; d++ {
				out.Set(t*s.D+d, n, o.y.At(t, d))
			}
		}
	}
}

// softmaxInto is Softmax writing into dst: identical per-column
// max-subtract / exp-accumulate / multiply-by-reciprocal arithmetic.
func softmaxInto(logits, dst *tensor.Matrix) *tensor.Matrix {
	dst = tensor.EnsureMatrix(dst, logits.Rows, logits.Cols)
	for c := 0; c < logits.Cols; c++ {
		maxv := math.Inf(-1)
		for r := 0; r < logits.Rows; r++ {
			if v := logits.At(r, c); v > maxv {
				maxv = v
			}
		}
		var sum float64
		for r := 0; r < logits.Rows; r++ {
			e := math.Exp(logits.At(r, c) - maxv)
			dst.Set(r, c, e)
			sum += e
		}
		inv := 1 / sum
		for r := 0; r < logits.Rows; r++ {
			dst.Set(r, c, dst.At(r, c)*inv)
		}
	}
	return dst
}

// opAdd is the residual join y = F(x) + S(x), matching Matrix.Add's
// elementwise sums.
type opAdd struct {
	a, b, out int
}

func (o *opAdd) run(e *Engine, batch int) {
	a, b := e.bufs[o.a], e.bufs[o.b]
	out := e.ensure(o.out, a.Rows, batch)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
}

// opConcat is the U-Net skip join y = concat(x, Branch(x)), matching
// SkipConcat.Forward's two copies.
type opConcat struct {
	xRows           int
	in, branch, out int
}

func (o *opConcat) run(e *Engine, batch int) {
	x, br := e.bufs[o.in], e.bufs[o.branch]
	out := e.ensure(o.out, o.xRows+br.Rows, batch)
	copy(out.Data[:o.xRows*batch], x.Data)
	copy(out.Data[o.xRows*batch:], br.Data)
}
