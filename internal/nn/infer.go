package nn

import (
	"fmt"
	"math"
	"sync"

	"github.com/scidata/errprop/internal/tensor"
)

// Engine is a compiled plan-once/execute-many inference program for a
// Network. CompileInference walks the layer graph once, performs static
// shape inference, fuses each activation into the preceding
// dense/conv/attention/batchnorm/residual op's write loop, and emits a
// flat op sequence over a preallocated buffer arena sized for maxBatch
// columns; Forward then replays the program with zero steady-state heap
// allocations using cache-blocked, register-tiled kernels
// (tensor.MulIntoBlocked and a fused implicit-im2col convolution).
//
// Two invariants make the engine safe to deploy under certified error
// bounds (DESIGN.md "Bit-identical fast paths"):
//
//   - Bit-identity: every op replicates the corresponding layer's
//     eval-mode Forward arithmetic exactly — for each output element the
//     same multiplications in the same ascending-k order, the same
//     zero-multiplicand skips, the same degenerate-case branches — so
//     Engine.Forward output is == (not merely close to) the legacy
//     Network.Forward output for any input. Blocking, fusion, and
//     sharding reorder work only ACROSS independent output elements,
//     never within one element's reduction; Inequality (3) certificates
//     computed against the reference network therefore transfer to the
//     engine verbatim.
//   - Shared weights: ops hold read-only views into the source network's
//     parameter storage (PSN layers get a private effective-weight
//     scratch recomputed per call from the live alpha/sigma state), so N
//     engines over one network cost no N-fold weight duplication, and a
//     weight update to the network is visible to every engine.
//
// CompileInferenceSharded adds an optional Shards mode: Forward splits
// the batch column-wise across that many goroutines executing the same
// op program over per-worker arenas, each carved from its own single
// slab allocation. Because every engine op maps batch columns
// independently (eval-mode batchnorm uses frozen running statistics),
// the split is pure data movement: shard boundaries are a fixed function
// of (batch, shards), the join copies shard outputs back in fixed
// ascending shard order, and no float reduction crosses a shard
// boundary — the same discipline as the PR 3 data-parallel trainer, so
// Shards=1 and Shards=N outputs are exact ==.
//
// An Engine is not safe for concurrent use (its arenas are mutable
// state); compile one per goroutine — they are cheap, sharing all
// weights. Batches wider than maxBatch still work: the arenas grow once
// to the new high-water mark (that growth allocates).
type Engine struct {
	inDim, outDim, maxBatch int

	lanes []*lane        // lanes[0] runs on the caller's goroutine
	outM  *tensor.Matrix // sharded-mode join buffer (nil for 1 lane)
	src   *tensor.Matrix // current call's input, read-only during a sharded call
	wg    sync.WaitGroup
}

// lane is one shard's execution context: a private copy of the op
// program (ops carry per-call scratch such as PSN effective weights and
// attention workspaces, so they cannot be shared across goroutines) plus
// a private buffer arena carved from one slab allocation.
type lane struct {
	eng  *Engine
	ops  []inferOp
	bufs []*tensor.Matrix
	in0  *tensor.Matrix // slab-backed slot-0 buffer for sharded input slices
	out  int            // arena index of the network output

	lo, hi int    // column range of the current sharded call
	start  func() // prebuilt closure: exec + wg.Done (no per-call alloc)
}

// inferOp is one step of the compiled program: read from arena slots,
// write to an arena slot, allocation-free at steady state.
type inferOp interface {
	run(ln *lane, batch int)
	// describe renders the op for compiled-program golden files: stable,
	// human-reviewable, one line.
	describe() string
}

// CompileInference compiles net into a single-shard inference engine
// with buffers sized for maxBatch-column inputs. It fails — rather than
// degrading to a slow path — if the network contains a layer type the
// compiler does not model or if the input dimension is not statically
// known.
//
// Compilation finalizes PSN spectral-norm estimates (ensureSigma), so a
// compiled engine's Forward never mutates the source network; multiple
// engines may share one network across goroutines.
func CompileInference(net *Network, maxBatch int) (*Engine, error) {
	return CompileInferenceSharded(net, maxBatch, 1)
}

// CompileInferenceSharded is CompileInference with Forward splitting
// each batch column-wise across up to shards goroutines. Outputs are
// bit-identical for every shard count; see the Engine doc for why.
// Shard counts above maxBatch are clamped (a shard never owns less than
// one column).
func CompileInferenceSharded(net *Network, maxBatch, shards int) (*Engine, error) {
	if net == nil {
		return nil, fmt.Errorf("nn: CompileInference: nil network")
	}
	if maxBatch <= 0 {
		return nil, fmt.Errorf("nn: CompileInference: maxBatch %d must be positive", maxBatch)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("nn: CompileInference: shards %d must be positive", shards)
	}
	if net.InputDim <= 0 {
		return nil, fmt.Errorf("nn: CompileInference: network input dim %d is not statically known", net.InputDim)
	}
	p, err := CompileProgram(net)
	if err != nil {
		return nil, err
	}
	return p.Bind(net, maxBatch, shards)
}

// Forward executes the compiled program on a (features x batch) matrix.
// The returned matrix is owned by the engine and valid only until the
// next Forward call; clone it to retain. Output is bit-identical to
// Network.Forward(x, false) on the source network, for any shard count.
//
//errprop:deterministic compiled plan replays the exact float schedule of the source network; shards split batch columns with a fixed boundary function and a fixed serial join order
func (e *Engine) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Rows != e.inDim {
		panic(fmt.Sprintf("nn: engine input rows %d != %d", x.Rows, e.inDim))
	}
	batch := x.Cols
	n := len(e.lanes)
	if n > batch {
		n = batch
	}
	if n <= 1 {
		ln := e.lanes[0]
		ln.bufs[0] = x
		for _, op := range ln.ops {
			op.run(ln, batch)
		}
		return ln.bufs[ln.out]
	}
	// Fixed shard boundaries: a function of (batch, n) alone. The first
	// batch%n lanes take one extra column.
	base, rem := batch/n, batch%n
	e.src = x
	lo := 0
	for l := 0; l < n; l++ {
		w := base
		if l < rem {
			w++
		}
		e.lanes[l].lo, e.lanes[l].hi = lo, lo+w
		lo += w
	}
	e.wg.Add(n - 1)
	for l := 1; l < n; l++ {
		go e.lanes[l].start()
	}
	e.lanes[0].exec()
	e.wg.Wait()
	// Fixed serial join order (lane 0, 1, ...): pure column copies, no
	// float arithmetic, so the join cannot perturb results.
	out := tensor.EnsureMatrix(e.outM, e.outDim, batch)
	e.outM = out
	for l := 0; l < n; l++ {
		ln := e.lanes[l]
		out.SetColRange(ln.lo, ln.bufs[ln.out])
	}
	return out
}

// exec runs the lane's op program over its column range of the current
// sharded call. Restoring bufs[0] from the slab-backed in0 first keeps a
// caller matrix bound by an earlier single-lane fast path from ever
// being written through.
func (ln *lane) exec() {
	ln.in0 = ln.eng.src.ColRangeInto(ln.lo, ln.hi, ln.in0)
	ln.bufs[0] = ln.in0
	w := ln.hi - ln.lo
	for _, op := range ln.ops {
		op.run(ln, w)
	}
}

// InputDim returns the engine's flattened input feature count.
func (e *Engine) InputDim() int { return e.inDim }

// OutputDim returns the engine's flattened output feature count,
// computed by static shape inference at compile time — no data probe.
func (e *Engine) OutputDim() int { return e.outDim }

// MaxBatch returns the batch width the arena was preallocated for.
func (e *Engine) MaxBatch() int { return e.maxBatch }

// Shards returns the number of compiled worker lanes (1 when unsharded).
func (e *Engine) Shards() int { return len(e.lanes) }

// Program renders the compiled op sequence, one op per line — the
// engine's auditable execution plan. Fusion decisions show up here, and
// the golden-program regression tests pin these dumps so a compiler
// change is a reviewable diff. All lanes compile the identical program;
// lane 0's is rendered.
func (e *Engine) Program() []string {
	ops := e.lanes[0].ops
	out := make([]string, len(ops))
	for i, op := range ops {
		out[i] = op.describe()
	}
	return out
}

// fusableWithAct reports whether the compiler can fold a following
// Activation into the op it emits for l. Folding is safe exactly when
// the op applies the activation to each output element after that
// element's full sum (and bias) — the same value the standalone
// activation pass would see — and the pre-activation slot has no other
// reader, which holds by construction inside a layer sequence.
func fusableWithAct(l Layer) bool {
	switch l.(type) {
	case *Dense, *Conv2D, *SelfAttention, *BatchNorm2D, *Residual:
		return true
	}
	return false
}

// ensure resizes arena slot i to rows x batch (reusing the preallocated
// backing at steady state) and returns it.
func (ln *lane) ensure(i, rows, batch int) *tensor.Matrix {
	m := tensor.EnsureMatrix(ln.bufs[i], rows, batch)
	ln.bufs[i] = m
	return m
}

// reluv replicates Activation.apply's ActReLU arm exactly (same branch,
// same literal +0 for non-positive inputs). It exists because apply — a
// method dispatching on kind — is too large to inline, and a per-element
// call in the fused write loops costs ~20% of a conv forward; reluv
// inlines to a compare-and-select. Ops check isReLU once per call and
// take the specialized loop.
func reluv(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0
}

// isReLU reports whether the fused activation is ReLU (nil-safe).
func (a *Activation) isReLU() bool { return a != nil && a.kind == ActReLU }

// fusedActName labels a folded activation in program dumps.
func fusedActName(a *Activation) string {
	if a == nil {
		return "none"
	}
	return a.kind
}

// opDense replicates Dense.Forward's eval path: w is the shared raw
// weight view for plain layers; under PSN it is a private scratch
// refreshed from the live alpha/sigma state each call, matching
// EffectiveMatrix (including the degenerate sigma == 0 raw-copy branch).
// The matmul runs on the blocked kernel (bit-identical to MulInto); the
// bias — and any fused activation — is applied in the write loop that
// follows, once per element, after that element's full sum.
type opDense struct {
	l       *Dense
	w       *tensor.Matrix
	act     *Activation
	in, out int
}

func (o *opDense) run(ln *lane, batch int) {
	d := o.l
	if d.PSN {
		if d.sigmaRaw == 0 {
			copy(o.w.Data, d.W.Data)
		} else {
			s := d.Alpha.Data[0] / d.sigmaRaw
			for i, w := range d.W.Data {
				o.w.Data[i] = w * s
			}
		}
	}
	x := ln.bufs[o.in]
	out := ln.ensure(o.out, d.Out, batch)
	out = o.w.MulIntoBlocked(x, out)
	ln.bufs[o.out] = out
	if o.act != nil {
		for r := 0; r < out.Rows; r++ {
			b := d.B.Data[r]
			row := out.Data[r*out.Cols : (r+1)*out.Cols]
			for c := range row {
				row[c] = o.act.apply(row[c] + b)
			}
		}
		return
	}
	for r := 0; r < out.Rows; r++ {
		b := d.B.Data[r]
		row := out.Data[r*out.Cols : (r+1)*out.Cols]
		for c := range row {
			row[c] += b
		}
	}
}

func (o *opDense) describe() string {
	return fmt.Sprintf("dense %s: s%d -> s%d (%d->%d) psn=%t act=%s",
		o.l.name, o.in, o.out, o.l.In, o.l.Out, o.l.PSN, fusedActName(o.act))
}

// convTapOffsets precomputes, for every output position s and kernel tap
// k (in the kw column order (ch*K+ky)*K+kx), the input feature row the
// tap reads — or -1 for a padded tap. The conv kernel then needs no
// bounds logic in its inner loops.
func convTapOffsets(c *Conv2D) []int32 {
	outH, outW := c.OutH(), c.OutW()
	offs := make([]int32, outH*outW*c.InC*c.K*c.K)
	i := 0
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			for ch := 0; ch < c.InC; ch++ {
				for ky := 0; ky < c.K; ky++ {
					iy := oy*c.Stride - c.Pad + ky
					for kx := 0; kx < c.K; kx++ {
						ix := ox*c.Stride - c.Pad + kx
						if iy < 0 || iy >= c.H || ix < 0 || ix >= c.W {
							offs[i] = -1
						} else {
							offs[i] = int32((ch*c.H+iy)*c.W + ix)
						}
						i++
					}
				}
			}
		}
	}
	return offs
}

// opConv is the fused implicit-im2col convolution: instead of
// materializing the im2col matrix and multiplying (the PR 5 path), it
// computes each output element's kw-row-dot-column directly from the
// input using the precomputed tap offsets, in a 2x4 (output channel x
// batch) register tile. Bit-identity with Im2ColMatInto + MulInto, per
// output element: the k loop visits taps in the identical ascending
// (ch,ky,kx) order; kw[oc][k] == 0 skips the tap exactly like MulInto's
// zero-multiplicand skip; and padded taps multiply a loaded 0.0 from the
// zeros buffer — the same `+= a*0` the materialized path performs — so
// even sign-of-zero effects match. Bias (and any fused activation) is
// applied at the register-tile store, after the element's full sum, and
// the output is written directly in the engine's feature-major layout —
// no cols buffer, no z buffer, no separate layout or activation pass.
type opConv struct {
	l       *Conv2D
	kw      *tensor.Matrix
	act     *Activation
	offs    []int32
	zeros   []float64 // all-zero row standing in for padded taps
	outC    int
	spatial int
	k2c     int
	in, out int
}

func (o *opConv) run(ln *lane, batch int) {
	c := o.l
	if c.PSN {
		if c.sigmaRaw == 0 {
			copy(o.kw.Data, c.Wt.Data)
		} else {
			s := c.Alpha.Data[0] / c.sigmaRaw
			for i, w := range c.Wt.Data {
				o.kw.Data[i] = w * s
			}
		}
	}
	x := ln.bufs[o.in]
	out := ln.ensure(o.out, o.outC*o.spatial, batch)
	if batch > len(o.zeros) {
		o.zeros = make([]float64, batch) // arena growth past maxBatch
	}
	o.convApply(x, out, batch)
}

// convApply is the kernel body; see the opConv doc for the bit-identity
// argument.
func (o *opConv) convApply(x, out *tensor.Matrix, batch int) {
	// Hoist every struct-field and matrix-header load into locals: the
	// inner k loop must not re-read through pointers the compiler cannot
	// prove unaliased with the output writes.
	kw := o.kw.Data
	bias := o.l.B.Data
	k2c, spatial, outC := o.k2c, o.spatial, o.outC
	offs, zeros, xd := o.offs, o.zeros, x.Data
	act := o.act
	relu := act.isReLU()
	for s := 0; s < spatial; s++ {
		tab := offs[s*k2c : (s+1)*k2c]
		oc := 0
		for ; oc+2 <= outC; oc += 2 {
			r0 := kw[oc*k2c : (oc+1)*k2c]
			r1 := kw[(oc+1)*k2c : (oc+2)*k2c]
			o0 := out.Data[(oc*spatial+s)*batch : (oc*spatial+s)*batch+batch]
			o1 := out.Data[((oc+1)*spatial+s)*batch : ((oc+1)*spatial+s)*batch+batch]
			b0, b1 := bias[oc], bias[oc+1]
			n := 0
			for ; n+4 <= batch; n += 4 {
				var a00, a01, a02, a03 float64
				var a10, a11, a12, a13 float64
				for k := 0; k < k2c; k++ {
					xb := zeros[:4:4]
					if f := tab[k]; f >= 0 {
						base := int(f)*batch + n
						xb = xd[base : base+4 : base+4]
					}
					if a := r0[k]; a != 0 {
						a00 += a * xb[0]
						a01 += a * xb[1]
						a02 += a * xb[2]
						a03 += a * xb[3]
					}
					if a := r1[k]; a != 0 {
						a10 += a * xb[0]
						a11 += a * xb[1]
						a12 += a * xb[2]
						a13 += a * xb[3]
					}
				}
				if relu {
					o0[n] = reluv(a00 + b0)
					o0[n+1] = reluv(a01 + b0)
					o0[n+2] = reluv(a02 + b0)
					o0[n+3] = reluv(a03 + b0)
					o1[n] = reluv(a10 + b1)
					o1[n+1] = reluv(a11 + b1)
					o1[n+2] = reluv(a12 + b1)
					o1[n+3] = reluv(a13 + b1)
				} else if act != nil {
					o0[n] = act.apply(a00 + b0)
					o0[n+1] = act.apply(a01 + b0)
					o0[n+2] = act.apply(a02 + b0)
					o0[n+3] = act.apply(a03 + b0)
					o1[n] = act.apply(a10 + b1)
					o1[n+1] = act.apply(a11 + b1)
					o1[n+2] = act.apply(a12 + b1)
					o1[n+3] = act.apply(a13 + b1)
				} else {
					o0[n] = a00 + b0
					o0[n+1] = a01 + b0
					o0[n+2] = a02 + b0
					o0[n+3] = a03 + b0
					o1[n] = a10 + b1
					o1[n+1] = a11 + b1
					o1[n+2] = a12 + b1
					o1[n+3] = a13 + b1
				}
			}
			for ; n < batch; n++ {
				var s0, s1 float64
				for k := 0; k < k2c; k++ {
					var xv float64
					if f := tab[k]; f >= 0 {
						xv = xd[int(f)*batch+n]
					}
					if a := r0[k]; a != 0 {
						s0 += a * xv
					}
					if a := r1[k]; a != 0 {
						s1 += a * xv
					}
				}
				if relu {
					o0[n] = reluv(s0 + b0)
					o1[n] = reluv(s1 + b1)
				} else if act != nil {
					o0[n] = act.apply(s0 + b0)
					o1[n] = act.apply(s1 + b1)
				} else {
					o0[n] = s0 + b0
					o1[n] = s1 + b1
				}
			}
		}
		for ; oc < outC; oc++ {
			r0 := kw[oc*k2c : (oc+1)*k2c]
			o0 := out.Data[(oc*spatial+s)*batch : (oc*spatial+s)*batch+batch]
			b0 := bias[oc]
			for n := 0; n < batch; n++ {
				var s0 float64
				for k := 0; k < k2c; k++ {
					var xv float64
					if f := tab[k]; f >= 0 {
						xv = xd[int(f)*batch+n]
					}
					if a := r0[k]; a != 0 {
						s0 += a * xv
					}
				}
				if relu {
					o0[n] = reluv(s0 + b0)
				} else if act != nil {
					o0[n] = act.apply(s0 + b0)
				} else {
					o0[n] = s0 + b0
				}
			}
		}
	}
}

func (o *opConv) describe() string {
	c := o.l
	return fmt.Sprintf("conv %s: s%d -> s%d (%dx%dx%d k=%d stride=%d pad=%d -> %dx%dx%d) psn=%t act=%s",
		c.name, o.in, o.out, c.InC, c.H, c.W, c.K, c.Stride, c.Pad,
		c.OutC, c.OutH(), c.OutW(), c.PSN, fusedActName(o.act))
}

// opAct applies the activation elementwise via the same apply switch the
// legacy path uses. It remains in compiled programs only where fusion
// does not apply (activation first in a sequence or after a
// non-fusable op).
type opAct struct {
	l       *Activation
	in, out int
}

func (o *opAct) run(ln *lane, batch int) {
	x := ln.bufs[o.in]
	out := ln.ensure(o.out, x.Rows, batch)
	for i, v := range x.Data {
		out.Data[i] = o.l.apply(v)
	}
}

func (o *opAct) describe() string {
	return fmt.Sprintf("act %s: s%d -> s%d", o.l.kind, o.in, o.out)
}

// opRound applies activation-format rounding elementwise.
type opRound struct {
	l       *RoundLayer
	in, out int
}

func (o *opRound) run(ln *lane, batch int) {
	x := ln.bufs[o.in]
	out := ln.ensure(o.out, x.Rows, batch)
	for i, v := range x.Data {
		out.Data[i] = o.l.Format.Round(v)
	}
}

func (o *opRound) describe() string {
	return fmt.Sprintf("round %s: s%d -> s%d format=%s", o.l.name, o.in, o.out, o.l.Format)
}

// opMaxPool replicates MaxPool2D.Forward (strict > keeps the same argmax
// tie-breaking, though only the max value is emitted here).
type opMaxPool struct {
	l       *MaxPool2D
	in, out int
}

func (o *opMaxPool) run(ln *lane, batch int) {
	p := o.l
	x := ln.bufs[o.in]
	oh, ow := p.OutH(), p.OutW()
	out := ln.ensure(o.out, p.C*oh*ow, batch)
	for c := 0; c < p.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := ((c*oh+oy)*ow + ox) * batch
				for n := 0; n < batch; n++ {
					best := math.Inf(-1)
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							f := (c*p.H+oy*p.K+ky)*p.W + ox*p.K + kx
							if v := x.Data[f*batch+n]; v > best {
								best = v
							}
						}
					}
					out.Data[dst+n] = best
				}
			}
		}
	}
}

func (o *opMaxPool) describe() string {
	return fmt.Sprintf("maxpool %s: s%d -> s%d k=%d", o.l.name, o.in, o.out, o.l.K)
}

// opAvgPool replicates AvgPool2D.Forward (same accumulation order, same
// multiply-by-reciprocal).
type opAvgPool struct {
	l       *AvgPool2D
	in, out int
}

func (o *opAvgPool) run(ln *lane, batch int) {
	p := o.l
	x := ln.bufs[o.in]
	oh, ow := p.OutH(), p.OutW()
	out := ln.ensure(o.out, p.C*oh*ow, batch)
	inv := 1 / float64(p.K*p.K)
	for c := 0; c < p.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := ((c*oh+oy)*ow + ox) * batch
				for n := 0; n < batch; n++ {
					var s float64
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							f := (c*p.H+oy*p.K+ky)*p.W + ox*p.K + kx
							s += x.Data[f*batch+n]
						}
					}
					out.Data[dst+n] = s * inv
				}
			}
		}
	}
}

func (o *opAvgPool) describe() string {
	return fmt.Sprintf("avgpool %s: s%d -> s%d k=%d", o.l.name, o.in, o.out, o.l.K)
}

// opGAP replicates GlobalAvgPool.Forward.
type opGAP struct {
	l       *GlobalAvgPool
	in, out int
}

func (o *opGAP) run(ln *lane, batch int) {
	p := o.l
	x := ln.bufs[o.in]
	spatial := p.H * p.W
	inv := 1 / float64(spatial)
	out := ln.ensure(o.out, p.C, batch)
	for c := 0; c < p.C; c++ {
		for n := 0; n < batch; n++ {
			var s float64
			for sp := 0; sp < spatial; sp++ {
				s += x.Data[(c*spatial+sp)*batch+n]
			}
			out.Data[c*batch+n] = s * inv
		}
	}
}

func (o *opGAP) describe() string {
	return fmt.Sprintf("gap %s: s%d -> s%d", o.l.name, o.in, o.out)
}

// opUpsample replicates Upsample2D.Forward (pure copies).
type opUpsample struct {
	l       *Upsample2D
	in, out int
}

func (o *opUpsample) run(ln *lane, batch int) {
	u := o.l
	x := ln.bufs[o.in]
	oh, ow := 2*u.H, 2*u.W
	out := ln.ensure(o.out, u.C*oh*ow, batch)
	for c := 0; c < u.C; c++ {
		for y := 0; y < u.H; y++ {
			for xx := 0; xx < u.W; xx++ {
				src := (c*u.H+y)*u.W + xx
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						dst := (c*oh+2*y+dy)*ow + 2*xx + dx
						copy(out.Data[dst*batch:(dst+1)*batch], x.Data[src*batch:(src+1)*batch])
					}
				}
			}
		}
	}
}

func (o *opUpsample) describe() string {
	return fmt.Sprintf("upsample %s: s%d -> s%d", o.l.name, o.in, o.out)
}

// opBatchNorm replicates BatchNorm2D.Forward's eval branch (frozen
// running statistics), with any fused activation applied per element
// after the affine transform — the identical value the standalone pass
// would compute.
type opBatchNorm struct {
	l       *BatchNorm2D
	act     *Activation
	in, out int
}

func (o *opBatchNorm) run(ln *lane, batch int) {
	bn := o.l
	x := ln.bufs[o.in]
	spatial := bn.H * bn.W
	out := ln.ensure(o.out, x.Rows, batch)
	for c := 0; c < bn.C; c++ {
		mean := bn.RunMean.Data[c]
		varv := bn.RunVar.Data[c]
		inv := 1 / math.Sqrt(varv+bn.Eps)
		g, b := bn.Gamma.Data[c], bn.Beta.Data[c]
		for s := 0; s < spatial; s++ {
			base := (c*spatial + s) * batch
			switch {
			case o.act.isReLU():
				for n := 0; n < batch; n++ {
					xh := (x.Data[base+n] - mean) * inv
					out.Data[base+n] = reluv(g*xh + b)
				}
			case o.act != nil:
				for n := 0; n < batch; n++ {
					xh := (x.Data[base+n] - mean) * inv
					out.Data[base+n] = o.act.apply(g*xh + b)
				}
			default:
				for n := 0; n < batch; n++ {
					xh := (x.Data[base+n] - mean) * inv
					out.Data[base+n] = g*xh + b
				}
			}
		}
	}
}

func (o *opBatchNorm) describe() string {
	return fmt.Sprintf("batchnorm %s: s%d -> s%d act=%s", o.l.name, o.in, o.out, fusedActName(o.act))
}

// opAttention replicates SelfAttention.Forward per sample using shared
// projection-weight views and preallocated T x D / T x T scratch. The
// transposes the legacy path materializes (k.T(), scores.T(), a = ...T())
// become TInto copies, Softmax becomes softmaxInto, and the matmuls run
// on the blocked kernel — pure data movements / bit-identical
// arithmetic. A fused activation is applied in the per-sample unpack
// loop, per element after its value is final.
type opAttention struct {
	l          *SelfAttention
	wq, wk, wv *tensor.Matrix
	act        *Activation

	xs, q, k, v         *tensor.Matrix
	kt, scores, scoresT *tensor.Matrix
	aT, a, y            *tensor.Matrix
	in, out             int
}

func (o *opAttention) run(ln *lane, batch int) {
	s := o.l
	x := ln.bufs[o.in]
	out := ln.ensure(o.out, s.InDim(), batch)
	invSqrtD := 1 / math.Sqrt(float64(s.D))
	for n := 0; n < batch; n++ {
		for t := 0; t < s.T; t++ {
			for d := 0; d < s.D; d++ {
				o.xs.Set(t, d, x.At(t*s.D+d, n))
			}
		}
		o.q = o.xs.MulIntoBlocked(o.wq, o.q)
		o.k = o.xs.MulIntoBlocked(o.wk, o.k)
		o.v = o.xs.MulIntoBlocked(o.wv, o.v)
		o.kt = o.k.TInto(o.kt)
		o.scores = o.q.MulIntoBlocked(o.kt, o.scores)
		o.scores.Scale(invSqrtD)
		o.scoresT = o.scores.TInto(o.scoresT)
		o.aT = softmaxInto(o.scoresT, o.aT)
		o.a = o.aT.TInto(o.a)
		o.y = o.a.MulIntoBlocked(o.v, o.y)
		if o.act != nil {
			for t := 0; t < s.T; t++ {
				for d := 0; d < s.D; d++ {
					out.Set(t*s.D+d, n, o.act.apply(o.y.At(t, d)))
				}
			}
		} else {
			for t := 0; t < s.T; t++ {
				for d := 0; d < s.D; d++ {
					out.Set(t*s.D+d, n, o.y.At(t, d))
				}
			}
		}
	}
}

func (o *opAttention) describe() string {
	return fmt.Sprintf("attention %s: s%d -> s%d (T=%d D=%d) act=%s",
		o.l.name, o.in, o.out, o.l.T, o.l.D, fusedActName(o.act))
}

// softmaxInto is Softmax writing into dst: identical per-column
// max-subtract / exp-accumulate / multiply-by-reciprocal arithmetic.
func softmaxInto(logits, dst *tensor.Matrix) *tensor.Matrix {
	dst = tensor.EnsureMatrix(dst, logits.Rows, logits.Cols)
	for c := 0; c < logits.Cols; c++ {
		maxv := math.Inf(-1)
		for r := 0; r < logits.Rows; r++ {
			if v := logits.At(r, c); v > maxv {
				maxv = v
			}
		}
		var sum float64
		for r := 0; r < logits.Rows; r++ {
			e := math.Exp(logits.At(r, c) - maxv)
			dst.Set(r, c, e)
			sum += e
		}
		inv := 1 / sum
		for r := 0; r < logits.Rows; r++ {
			dst.Set(r, c, dst.At(r, c)*inv)
		}
	}
	return dst
}

// opAdd is the residual join y = F(x) + S(x), matching Matrix.Add's
// elementwise sums, with any fused activation applied to each element's
// final sum.
type opAdd struct {
	act       *Activation
	a, b, out int
}

func (o *opAdd) run(ln *lane, batch int) {
	a, b := ln.bufs[o.a], ln.bufs[o.b]
	out := ln.ensure(o.out, a.Rows, batch)
	switch {
	case o.act.isReLU():
		for i := range a.Data {
			out.Data[i] = reluv(a.Data[i] + b.Data[i])
		}
	case o.act != nil:
		for i := range a.Data {
			out.Data[i] = o.act.apply(a.Data[i] + b.Data[i])
		}
	default:
		for i := range a.Data {
			out.Data[i] = a.Data[i] + b.Data[i]
		}
	}
}

func (o *opAdd) describe() string {
	return fmt.Sprintf("add: s%d + s%d -> s%d act=%s", o.a, o.b, o.out, fusedActName(o.act))
}

// opConcat is the U-Net skip join y = concat(x, Branch(x)), matching
// SkipConcat.Forward's two copies.
type opConcat struct {
	xRows           int
	in, branch, out int
}

func (o *opConcat) run(ln *lane, batch int) {
	x, br := ln.bufs[o.in], ln.bufs[o.branch]
	out := ln.ensure(o.out, o.xRows+br.Rows, batch)
	copy(out.Data[:o.xRows*batch], x.Data)
	copy(out.Data[o.xRows*batch:], br.Data)
}

func (o *opConcat) describe() string {
	return fmt.Sprintf("concat: s%d | s%d -> s%d", o.in, o.branch, o.out)
}
