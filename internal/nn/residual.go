package nn

import (
	"github.com/scidata/errprop/internal/tensor"
)

// Residual is the paper's Eq. (1) building block: y = F(x) + W_s x, where
// F is a sequence of layers (the residual mapping) and the shortcut is
// either the identity (Shortcut == nil) or its own layer sequence (e.g. a
// 1x1 projection conv when dimensions change).
type Residual struct {
	Branch   []Layer
	Shortcut []Layer // nil means identity
	name     string
}

// NewResidual builds a residual block.
func NewResidual(name string, branch, shortcut []Layer) *Residual {
	return &Residual{Branch: branch, Shortcut: shortcut, name: name}
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	f := x
	for _, l := range r.Branch {
		f = l.Forward(f, train)
	}
	s := x
	for _, l := range r.Shortcut {
		s = l.Forward(s, train)
	}
	return f.Add(s)
}

// Backward implements Layer.
func (r *Residual) Backward(grad *tensor.Matrix) *tensor.Matrix {
	gf := grad
	for i := len(r.Branch) - 1; i >= 0; i-- {
		gf = r.Branch[i].Backward(gf)
	}
	gs := grad
	for i := len(r.Shortcut) - 1; i >= 0; i-- {
		gs = r.Shortcut[i].Backward(gs)
	}
	return gf.Add(gs)
}

// Params implements Layer.
func (r *Residual) Params() []*Param {
	var out []*Param
	for _, l := range r.Branch {
		out = append(out, l.Params()...)
	}
	for _, l := range r.Shortcut {
		out = append(out, l.Params()...)
	}
	return out
}

// AddRegGrad implements Regularized by delegating to block members.
func (r *Residual) AddRegGrad(lambda float64) float64 {
	var s float64
	for _, l := range r.Branch {
		if reg, ok := l.(Regularized); ok {
			s += reg.AddRegGrad(lambda)
		}
	}
	for _, l := range r.Shortcut {
		if reg, ok := l.(Regularized); ok {
			s += reg.AddRegGrad(lambda)
		}
	}
	return s
}
