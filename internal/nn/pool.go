package nn

import (
	"fmt"
	"math"

	"github.com/scidata/errprop/internal/tensor"
)

// Lipschitzer is implemented by parameter-free layers whose error-flow
// contribution is a pure Lipschitz factor (activations, pooling).
type Lipschitzer interface {
	Lipschitz() float64
}

// AvgPool2D averages non-overlapping KxK windows (stride == K). As a
// linear operator its spectral norm is exactly 1/K, which the error-flow
// analysis exploits: pooling *attenuates* propagated error.
type AvgPool2D struct {
	C, H, W int // input geometry
	K       int
	inBatch int
	name    string
}

// NewAvgPool2D builds a pooling layer; H and W must be divisible by K.
func NewAvgPool2D(name string, c, h, w, k int) *AvgPool2D {
	if h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("nn: avgpool %dx%d not divisible by %d", h, w, k))
	}
	return &AvgPool2D{C: c, H: h, W: w, K: k, name: name}
}

// Name implements Layer.
func (p *AvgPool2D) Name() string { return p.name }

// OutH returns the pooled height.
func (p *AvgPool2D) OutH() int { return p.H / p.K }

// OutW returns the pooled width.
func (p *AvgPool2D) OutW() int { return p.W / p.K }

// InDim returns the flattened input feature count.
func (p *AvgPool2D) InDim() int { return p.C * p.H * p.W }

// OutDim returns the flattened output feature count.
func (p *AvgPool2D) OutDim() int { return p.C * p.OutH() * p.OutW() }

// Lipschitz implements Lipschitzer: the operator norm of non-overlapping
// K x K averaging is 1/K.
func (p *AvgPool2D) Lipschitz() float64 { return 1 / float64(p.K) }

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Rows != p.InDim() {
		panic(fmt.Sprintf("nn: %s input rows %d != %d", p.name, x.Rows, p.InDim()))
	}
	batch := x.Cols
	if train {
		p.inBatch = batch
	}
	oh, ow := p.OutH(), p.OutW()
	//lint:ignore hotalloc legacy per-call layer path; the compiled engine (infer.go) is the zero-alloc fast path
	out := tensor.NewMatrix(p.C*oh*ow, batch)
	inv := 1 / float64(p.K*p.K)
	for c := 0; c < p.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := ((c*oh+oy)*ow + ox) * batch
				for n := 0; n < batch; n++ {
					var s float64
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							f := (c*p.H+oy*p.K+ky)*p.W + ox*p.K + kx
							s += x.Data[f*batch+n]
						}
					}
					out.Data[dst+n] = s * inv
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(grad *tensor.Matrix) *tensor.Matrix {
	batch := p.inBatch
	oh, ow := p.OutH(), p.OutW()
	out := tensor.NewMatrix(p.InDim(), batch)
	inv := 1 / float64(p.K*p.K)
	for c := 0; c < p.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				src := ((c*oh+oy)*ow + ox) * batch
				for n := 0; n < batch; n++ {
					g := grad.Data[src+n] * inv
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							f := (c*p.H+oy*p.K+ky)*p.W + ox*p.K + kx
							out.Data[f*batch+n] += g
						}
					}
				}
			}
		}
	}
	return out
}

// Params implements Layer.
func (p *AvgPool2D) Params() []*Param { return nil }

// GlobalAvgPool averages each channel's full spatial extent, producing a
// C-dimensional feature vector. Its operator norm is 1/sqrt(H*W).
type GlobalAvgPool struct {
	C, H, W int
	inBatch int
	name    string
}

// NewGlobalAvgPool builds a global average pooling layer.
func NewGlobalAvgPool(name string, c, h, w int) *GlobalAvgPool {
	return &GlobalAvgPool{C: c, H: h, W: w, name: name}
}

// Name implements Layer.
func (p *GlobalAvgPool) Name() string { return p.name }

// InDim returns the flattened input feature count.
func (p *GlobalAvgPool) InDim() int { return p.C * p.H * p.W }

// OutDim returns C.
func (p *GlobalAvgPool) OutDim() int { return p.C }

// Lipschitz implements Lipschitzer: averaging m values has operator norm
// 1/sqrt(m).
func (p *GlobalAvgPool) Lipschitz() float64 {
	return 1 / math.Sqrt(float64(p.H*p.W))
}

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Rows != p.InDim() {
		panic(fmt.Sprintf("nn: %s input rows %d != %d", p.name, x.Rows, p.InDim()))
	}
	batch := x.Cols
	if train {
		p.inBatch = batch
	}
	spatial := p.H * p.W
	inv := 1 / float64(spatial)
	//lint:ignore hotalloc legacy per-call layer path; the compiled engine (infer.go) is the zero-alloc fast path
	out := tensor.NewMatrix(p.C, batch)
	for c := 0; c < p.C; c++ {
		for n := 0; n < batch; n++ {
			var s float64
			for sp := 0; sp < spatial; sp++ {
				s += x.Data[(c*spatial+sp)*batch+n]
			}
			out.Data[c*batch+n] = s * inv
		}
	}
	return out
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(grad *tensor.Matrix) *tensor.Matrix {
	batch := p.inBatch
	spatial := p.H * p.W
	inv := 1 / float64(spatial)
	out := tensor.NewMatrix(p.InDim(), batch)
	for c := 0; c < p.C; c++ {
		for n := 0; n < batch; n++ {
			g := grad.Data[c*batch+n] * inv
			for sp := 0; sp < spatial; sp++ {
				out.Data[(c*spatial+sp)*batch+n] = g
			}
		}
	}
	return out
}

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*Param { return nil }
