package nn

import (
	"bytes"
	"errors"
	"testing"

	"github.com/scidata/errprop/internal/integrity"
)

func saveModel(t *testing.T) (*Network, []byte) {
	t.Helper()
	spec := ResNetSpec("m3", 1, 6, 6, 3, []int{1}, []int{2}, ActReLU, true)
	net, err := spec.Build(9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return net, buf.Bytes()
}

func TestModelV3RoundTrip(t *testing.T) {
	net, raw := saveModel(t)
	if got := string(raw[:len(modelMagicV3)]); got != modelMagicV3 {
		t.Fatalf("Save wrote magic %q, want %q", got, modelMagicV3)
	}
	loaded, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	a, b := flatParams(net), flatParams(loaded)
	if len(a) != len(b) {
		t.Fatalf("parameter count %d != %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parameter drift at flat index %d", i)
		}
	}
	sa, sb := net.spectralSigmas(), loaded.spectralSigmas()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sigma estimate drift at %d: %v != %v", i, sb[i], sa[i])
		}
	}
}

// TestModelLegacyV2StillLoads pins backward compatibility: a body framed
// with the old unchecksummed magic must keep loading.
func TestModelLegacyV2StillLoads(t *testing.T) {
	net, _ := saveModel(t)
	var legacy bytes.Buffer
	legacy.WriteString(modelMagic)
	if err := net.saveBody(&legacy); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(legacy.Bytes()))
	if err != nil {
		t.Fatalf("legacy model no longer loads: %v", err)
	}
	a, b := flatParams(net), flatParams(loaded)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("legacy load parameter drift at flat index %d", i)
		}
	}
}

// TestModelV3DetectsEveryByteFlip: any single corrupted byte in a v3
// model file must surface as a typed integrity error — a model that
// loads wrong silently would poison every downstream prediction.
func TestModelV3DetectsEveryByteFlip(t *testing.T) {
	_, raw := saveModel(t)
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x10
		if _, err := Load(bytes.NewReader(mut)); err == nil {
			t.Fatalf("byte %d flip: corrupt model loaded without error", i)
		} else if !integrity.IsIntegrityError(err) {
			t.Fatalf("byte %d flip: untyped error %v", i, err)
		}
	}
}

func TestModelV3TruncationTyped(t *testing.T) {
	_, raw := saveModel(t)
	for _, cut := range []int{0, 4, len(modelMagicV3), len(modelMagicV3) + 8,
		len(modelMagicV3) + 12, len(raw) / 2, len(raw) - 1} {
		_, err := Load(bytes.NewReader(raw[:cut]))
		if !errors.Is(err, integrity.ErrTruncated) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrTruncated", cut, err)
		}
	}
}

func TestModelV3BadMagicAndLength(t *testing.T) {
	_, raw := saveModel(t)
	bad := append([]byte(nil), raw...)
	copy(bad, "ERRPROPNN9")
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, integrity.ErrCorrupt) {
		t.Fatalf("unknown magic: got %v, want ErrCorrupt", err)
	}
	// An absurd declared body length must be rejected before allocation.
	huge := append([]byte(nil), raw[:len(modelMagicV3)]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	huge = append(huge, 0, 0, 0, 0)
	if _, err := Load(bytes.NewReader(huge)); !errors.Is(err, integrity.ErrCorrupt) {
		t.Fatalf("absurd body length: got %v, want ErrCorrupt", err)
	}
}
