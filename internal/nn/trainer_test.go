package nn

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/scidata/errprop/internal/tensor"
)

// bitEqual reports exact floating-point equality — the property the
// deterministic trainer guarantees, so tests assert it without tolerance.
func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randMatrix(rows, cols int, rng *rand.Rand) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func trainerMLP(t *testing.T, psn bool, seed int64) *Network {
	t.Helper()
	net, err := MLPSpec("trmlp", []int{9, 24, 24, 4}, ActTanh, psn).Build(seed)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return net
}

// runTrainer builds a fresh MLP from seed and trains it steps times with
// the given worker count, returning the final flattened parameters and
// the per-step loss trace.
func runTrainer(t *testing.T, workers, shard, steps int, psn bool, lambda float64, newOpt func() Optimizer) ([]float64, []float64) {
	t.Helper()
	net := trainerMLP(t, psn, 1234)
	tr, err := NewTrainer(net, newOpt(), TrainConfig{Workers: workers, ShardSize: shard})
	if err != nil {
		t.Fatalf("NewTrainer: %v", err)
	}
	rng := rand.New(rand.NewSource(99))
	x := randMatrix(9, 100, rng)
	y := randMatrix(4, 100, rng)
	losses := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		losses = append(losses, tr.StepMSE(x, y, lambda))
	}
	var flat []float64
	for _, p := range net.Params() {
		flat = append(flat, p.Data...)
	}
	return flat, losses
}

// TestTrainerWorkerCountInvariance is the PR's headline property: the
// weight trajectory is bit-identical no matter how many workers compute
// the shards. 50 steps of a PSN MLP with momentum SGD, Workers=1 vs 8.
func TestTrainerWorkerCountInvariance(t *testing.T) {
	newOpt := func() Optimizer { return NewSGD(0.05, 0.9, 0) }
	w1, l1 := runTrainer(t, 1, 16, 50, true, 1e-4, newOpt)
	w8, l8 := runTrainer(t, 8, 16, 50, true, 1e-4, newOpt)
	if !bitEqual(l1, l8) {
		t.Fatalf("loss traces differ between Workers=1 and Workers=8")
	}
	if !bitEqual(w1, w8) {
		t.Fatalf("weights differ between Workers=1 and Workers=8 after 50 steps")
	}
}

// TestTrainerWorkerCountInvarianceAdam covers the Adam path (the
// Borghesi recipe) and an uneven final shard (batch 100, shard 24).
func TestTrainerWorkerCountInvarianceAdam(t *testing.T) {
	newOpt := func() Optimizer { return NewAdam(2e-3) }
	w1, l1 := runTrainer(t, 1, 24, 30, true, 1e-2, newOpt)
	w5, l5 := runTrainer(t, 5, 24, 30, true, 1e-2, newOpt)
	if !bitEqual(l1, l5) {
		t.Fatalf("loss traces differ between Workers=1 and Workers=5")
	}
	if !bitEqual(w1, w5) {
		t.Fatalf("weights differ between Workers=1 and Workers=5 after 30 steps")
	}
}

// TestTrainerWorkerCountInvarianceConvResidual runs the invariance check
// on a small PSN conv/residual classifier under cross-entropy.
func TestTrainerWorkerCountInvarianceConvResidual(t *testing.T) {
	run := func(workers int) ([]float64, []float64) {
		net, err := ResNetSpec("trres", 2, 8, 8, 3, []int{1, 1}, []int{4, 6}, ActReLU, true).Build(4321)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		tr, err := NewTrainer(net, NewSGD(0.01, 0.9, 0), TrainConfig{Workers: workers, ShardSize: 8})
		if err != nil {
			t.Fatalf("NewTrainer: %v", err)
		}
		rng := rand.New(rand.NewSource(7))
		x := randMatrix(2*8*8, 24, rng)
		labels := make([]int, 24)
		for i := range labels {
			labels[i] = rng.Intn(3)
		}
		var losses []float64
		for i := 0; i < 10; i++ {
			losses = append(losses, tr.StepCrossEntropy(x, labels, 1e-3))
		}
		var flat []float64
		for _, p := range net.Params() {
			flat = append(flat, p.Data...)
		}
		return flat, losses
	}
	w1, l1 := run(1)
	w4, l4 := run(4)
	if !bitEqual(l1, l4) {
		t.Fatalf("conv/residual loss traces differ between Workers=1 and Workers=4")
	}
	if !bitEqual(w1, w4) {
		t.Fatalf("conv/residual weights differ between Workers=1 and Workers=4")
	}
}

// TestTrainerSingleShardMatchesSerialLoop pins the trainer to the legacy
// serial training loop: with one shard covering the whole batch the
// data-parallel machinery (replica broadcast, explicit sigma stepping,
// flat-buffer reduction) must reproduce the plain
// ZeroGrad/Forward/MSELoss/Backward/Step sequence bit for bit.
func TestTrainerSingleShardMatchesSerialLoop(t *testing.T) {
	const steps, batch = 25, 40
	lambda := 1e-4

	serial := trainerMLP(t, true, 1234)
	serialOpt := NewSGD(0.05, 0.9, 0)
	rng := rand.New(rand.NewSource(55))
	x := randMatrix(9, batch, rng)
	y := randMatrix(4, batch, rng)
	serialLoss := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		serial.ZeroGrad()
		out := serial.Forward(x, true)
		l, g := MSELoss(out, y)
		l += serial.AddRegGrad(lambda)
		serial.Backward(g)
		serialOpt.Step(serial.Params())
		serialLoss = append(serialLoss, l)
	}

	par := trainerMLP(t, true, 1234)
	tr, err := NewTrainer(par, NewSGD(0.05, 0.9, 0), TrainConfig{Workers: 3, ShardSize: batch})
	if err != nil {
		t.Fatalf("NewTrainer: %v", err)
	}
	parLoss := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		parLoss = append(parLoss, tr.StepMSE(x, y, lambda))
	}

	if !bitEqual(serialLoss, parLoss) {
		t.Fatalf("trainer with one full-batch shard diverged from the serial loop:\nserial %v\ntrainer %v", serialLoss, parLoss)
	}
	sp, pp := serial.Params(), par.Params()
	for i := range sp {
		if !bitEqual(sp[i].Data, pp[i].Data) {
			t.Fatalf("param %s differs between serial loop and single-shard trainer", sp[i].Name)
		}
	}
}

// TestTrainerRejectsBatchNorm: BatchNorm's train-mode statistics couple
// the columns of whatever sub-batch it sees, so sharded training would
// silently change the model; the trainer must refuse instead.
func TestTrainerRejectsBatchNorm(t *testing.T) {
	spec := &Spec{Name: "bnnet", InputDim: 2 * 4 * 4, Layers: []LayerSpec{
		{Type: "conv", Name: "bnnet.c", C: 2, H: 4, W: 4, OutC: 3, K: 3, Stride: 1, Pad: 1},
		{Type: "bn", Name: "bnnet.bn", C: 3, H: 4, W: 4},
		{Type: "gap", Name: "bnnet.gap", C: 3, H: 4, W: 4},
		{Type: "dense", Name: "bnnet.head", In: 3, Out: 2},
	}}
	net, err := spec.Build(1)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	_, err = NewTrainer(net, NewSGD(0.1, 0, 0), TrainConfig{Workers: 2})
	if err == nil {
		t.Fatalf("NewTrainer accepted a BatchNorm network")
	}
	if !strings.Contains(err.Error(), "BatchNorm") {
		t.Fatalf("unexpected rejection message: %v", err)
	}
}

// TestTrainerRaceStress exercises the concurrent shard workers under the
// race detector (go test -race): many small shards, more workers than
// cores, repeated steps.
func TestTrainerRaceStress(t *testing.T) {
	net := trainerMLP(t, true, 9)
	tr, err := NewTrainer(net, NewAdam(1e-3), TrainConfig{Workers: 8, ShardSize: 4})
	if err != nil {
		t.Fatalf("NewTrainer: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	x := randMatrix(9, 64, rng)
	y := randMatrix(4, 64, rng)
	for i := 0; i < 15; i++ {
		if l := tr.StepMSE(x, y, 1e-4); l != l || l < 0 {
			t.Fatalf("step %d: bad loss %v", i, l)
		}
	}
}

// TestTrainerShardLossComposition: shard losses must sum (in the fixed
// reduction order) to the full-batch loss the serial path reports.
func TestTrainerShardLossComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	yhat := randMatrix(5, 33, rng)
	y := randMatrix(5, 33, rng)
	full, fullGrad := MSELoss(yhat, y)
	var sum float64
	cols := 0
	for lo := 0; lo < 33; lo += 8 {
		hi := lo + 8
		if hi > 33 {
			hi = 33
		}
		shard := yhat.ColRangeInto(lo, hi, nil)
		l, g := MSELossShard(shard, y, lo, hi, 33)
		sum += l
		// Shard gradient columns must equal the full-batch gradient's.
		for r := 0; r < g.Rows; r++ {
			want := fullGrad.Data[r*33+lo : r*33+hi]
			got := g.Data[r*g.Cols : (r+1)*g.Cols]
			if !bitEqual(want, got) {
				t.Fatalf("shard [%d,%d) grad row %d differs from full-batch gradient", lo, hi, r)
			}
		}
		cols += hi - lo
	}
	if cols != 33 {
		t.Fatalf("shards covered %d of 33 columns", cols)
	}
	if d := sum - full; d > 1e-12 || d < -1e-12 {
		t.Fatalf("shard losses sum to %v, full-batch loss %v", sum, full)
	}
}
