package nn

import (
	"fmt"
	"math"

	"github.com/scidata/errprop/internal/tensor"
)

// Activation is an elementwise nonlinearity with a known global Lipschitz
// constant (the paper's constant C = sup_z phi'(z), Section III-A).
type Activation struct {
	kind  string
	alpha *Param // PReLU slope (nil otherwise)
	leak  float64
	inX   *tensor.Matrix // cached input for backward
}

// Supported activation kinds.
const (
	ActIdentity = "identity"
	ActTanh     = "tanh"
	ActReLU     = "relu"
	ActLeaky    = "leakyrelu"
	ActPReLU    = "prelu"
	ActGELU     = "gelu"
	ActSigmoid  = "sigmoid"
)

// NewActivation constructs an activation layer of the given kind.
// LeakyReLU uses slope 0.01; PReLU starts at 0.25 (PyTorch defaults).
func NewActivation(kind string) (*Activation, error) {
	a := &Activation{kind: kind}
	switch kind {
	case ActIdentity, ActTanh, ActReLU, ActGELU, ActSigmoid:
	case ActLeaky:
		a.leak = 0.01
	case ActPReLU:
		a.alpha = NewParam("prelu.alpha", 1)
		a.alpha.Data[0] = 0.25
	default:
		return nil, fmt.Errorf("nn: unknown activation %q", kind)
	}
	return a, nil
}

// MustActivation is NewActivation that panics on error; for builders with
// static kinds.
func MustActivation(kind string) *Activation {
	a, err := NewActivation(kind)
	if err != nil {
		panic(err)
	}
	return a
}

// Name implements Layer.
func (a *Activation) Name() string { return "act." + a.kind }

// Kind returns the activation kind constant.
func (a *Activation) Kind() string { return a.kind }

// Lipschitz returns the global bound on |phi'|. For PReLU with learned
// slope s it is max(1, |s|); the tanh-approximated GELU implemented here
// has its derivative peak at 1.12900 (near v = 1.4185), slightly above
// the exact GELU's 1.0830.
func (a *Activation) Lipschitz() float64 {
	switch a.kind {
	case ActIdentity, ActReLU, ActTanh:
		return 1
	case ActLeaky:
		return math.Max(1, a.leak)
	case ActPReLU:
		return math.Max(1, math.Abs(a.alpha.Data[0]))
	case ActGELU:
		return 1.12900
	case ActSigmoid:
		return 0.25
	}
	return 1
}

// ZeroValue returns |phi(0)|, the per-element output magnitude at zero
// input — nonzero only for sigmoid (0.5). A Lipschitz constant alone
// bounds the *centered* response |phi(h) - phi(0)|, so signal-magnitude
// bounds through an activation must add ZeroValue() * sqrt(width) on top
// of the C * ||h|| gain; ignoring the offset under-bounds the hidden
// state feeding downstream weight-quantization error (a soundness bug
// the error-flow analysis once had for sigmoid networks).
func (a *Activation) ZeroValue() float64 {
	if a.kind == ActSigmoid {
		return 0.5
	}
	return 0
}

// Forward implements Layer.
func (a *Activation) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		a.inX = x.Clone()
	}
	//lint:ignore hotalloc legacy per-call layer path; the compiled engine (infer.go) is the zero-alloc fast path
	out := tensor.NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = a.apply(v)
	}
	return out
}

func (a *Activation) apply(v float64) float64 {
	switch a.kind {
	case ActIdentity:
		return v
	case ActTanh:
		return math.Tanh(v)
	case ActReLU:
		if v > 0 {
			return v
		}
		return 0
	case ActLeaky:
		if v > 0 {
			return v
		}
		return a.leak * v
	case ActPReLU:
		if v > 0 {
			return v
		}
		return a.alpha.Data[0] * v
	case ActGELU:
		// Tanh approximation of GELU.
		return 0.5 * v * (1 + math.Tanh(math.Sqrt(2/math.Pi)*(v+0.044715*v*v*v)))
	case ActSigmoid:
		return 1 / (1 + math.Exp(-v))
	}
	return v
}

func (a *Activation) deriv(v float64) float64 {
	switch a.kind {
	case ActIdentity:
		return 1
	case ActTanh:
		t := math.Tanh(v)
		return 1 - t*t
	case ActReLU:
		if v > 0 {
			return 1
		}
		return 0
	case ActLeaky:
		if v > 0 {
			return 1
		}
		return a.leak
	case ActPReLU:
		if v > 0 {
			return 1
		}
		return a.alpha.Data[0]
	case ActGELU:
		const c = 0.7978845608028654 // sqrt(2/pi)
		u := c * (v + 0.044715*v*v*v)
		t := math.Tanh(u)
		du := c * (1 + 3*0.044715*v*v)
		return 0.5*(1+t) + 0.5*v*(1-t*t)*du
	case ActSigmoid:
		s := 1 / (1 + math.Exp(-v))
		return s * (1 - s)
	}
	return 1
}

// Backward implements Layer.
func (a *Activation) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if a.inX == nil {
		panic("nn: activation Backward before Forward(train)")
	}
	out := tensor.NewMatrix(grad.Rows, grad.Cols)
	var dAlpha float64
	for i, g := range grad.Data {
		v := a.inX.Data[i]
		out.Data[i] = g * a.deriv(v)
		if a.kind == ActPReLU && v <= 0 {
			dAlpha += g * v
		}
	}
	if a.alpha != nil {
		a.alpha.Grad[0] += dAlpha
	}
	return out
}

// Params implements Layer.
func (a *Activation) Params() []*Param {
	if a.alpha != nil {
		return []*Param{a.alpha}
	}
	return nil
}
