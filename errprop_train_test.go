package errprop_test

import (
	"math"
	"math/rand"
	"testing"

	errprop "github.com/scidata/errprop"
)

// TestFacadeTraining drives the full public training surface: build a
// PSN MLP, train it data-parallel through the facade, and confirm the
// loss drops and the result feeds straight into Analyze.
func TestFacadeTraining(t *testing.T) {
	spec := errprop.MLPSpec("facadetrain", []int{4, 16, 2}, errprop.ActTanh, true)
	net, err := spec.Build(7)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tr, err := errprop.NewTrainer(net, errprop.NewSGD(0.05, 0.9, 0), errprop.TrainConfig{Workers: 2, ShardSize: 8})
	if err != nil {
		t.Fatalf("NewTrainer: %v", err)
	}

	rng := rand.New(rand.NewSource(42))
	x := errprop.NewMatrix(4, 64)
	y := errprop.NewMatrix(2, 64)
	for c := 0; c < 64; c++ {
		var s float64
		for r := 0; r < 4; r++ {
			v := rng.NormFloat64()
			x.Set(r, c, v)
			s += v
		}
		y.Set(0, c, math.Tanh(s))
		y.Set(1, c, s/4)
	}

	first := tr.Step(x, errprop.MSEShard(y), 1e-4)
	var last float64
	for i := 0; i < 200; i++ {
		last = tr.Step(x, errprop.MSEShard(y), 1e-4)
	}
	if !(last < first/2) {
		t.Fatalf("training did not reduce loss: first %v last %v", first, last)
	}

	net.RefreshSigmas()
	an, err := errprop.Analyze(net, errprop.FP16)
	if err != nil {
		t.Fatalf("Analyze after training: %v", err)
	}
	if b := an.BoundLinf(1e-5); !(b > 0) || math.IsInf(b, 0) {
		t.Fatalf("bound after training = %v", b)
	}
}
