package errprop_test

import (
	"math"
	"testing"

	errprop "github.com/scidata/errprop"
	"github.com/scidata/errprop/internal/autotune"
	"github.com/scidata/errprop/internal/tensor"
)

func TestFacadeGroupedINT8(t *testing.T) {
	net := buildTrained(t)
	an, err := errprop.AnalyzeGroupedINT8(net, errprop.PerRow, 0)
	if err != nil {
		t.Fatal(err)
	}
	anPT, err := errprop.AnalyzeGroupedINT8(net, errprop.PerTensor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if an.QuantizationBound() >= anPT.QuantizationBound() {
		t.Fatalf("per-row bound %v should beat per-tensor %v",
			an.QuantizationBound(), anPT.QuantizationBound())
	}
	qnet, err := errprop.QuantizeGroupedINT8(net, errprop.PerRow, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{0.3, -0.2, 0.5, 0.1}
	y := net.ForwardVec(x.Clone())
	yq := qnet.ForwardVec(x.Clone())
	if d := y.Sub(yq).Norm2(); d > an.QuantizationBound() {
		t.Fatalf("achieved %v > grouped bound %v", d, an.QuantizationBound())
	}
}

func TestFacadeActivationQuant(t *testing.T) {
	net := buildTrained(t)
	an, err := errprop.Analyze(net, errprop.FP32)
	if err != nil {
		t.Fatal(err)
	}
	bound := an.ActivationQuantBound(errprop.FP16)
	if bound <= 0 {
		t.Fatal("degenerate activation-quant bound")
	}
	qnet, err := errprop.QuantizeActivations(net, errprop.FP32, errprop.FP16)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{0.1, 0.9, -0.4, 0.2}
	y := net.ForwardVec(x.Clone())
	yq := qnet.ForwardVec(x.Clone())
	// Allow the copy's FP32 weight-storage rounding on top.
	if d := y.Sub(yq).Norm2(); d > bound+1e-6 {
		t.Fatalf("achieved %v > activation bound %v", d, bound)
	}
}

func TestFacadeMixedPrecision(t *testing.T) {
	net := buildTrained(t)
	an, err := errprop.Analyze(net, errprop.FP16)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := errprop.PlanMixedPrecision(net, an.QuantizationBound()*2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.QuantBound > an.QuantizationBound()*2 {
		t.Fatalf("mixed plan bound %v exceeds budget", plan.QuantBound)
	}
	qnet, err := errprop.QuantizeMixed(net, plan.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{-0.3, 0.7, 0.2, -0.5}
	y := net.ForwardVec(x.Clone())
	yq := qnet.ForwardVec(x.Clone())
	if d := y.Sub(yq).Norm2(); d > plan.QuantBound {
		t.Fatalf("achieved %v > mixed bound %v", d, plan.QuantBound)
	}
}

func TestFacadeEstimateRatioAndAutotune(t *testing.T) {
	net := buildTrained(t)
	field := make([]float64, 4*1024)
	for f := 0; f < 4; f++ {
		for i := 0; i < 1024; i++ {
			field[f*1024+i] = math.Sin(float64(i)/17 + float64(f))
		}
	}
	dims := []int{4, 32, 32}
	est, err := errprop.EstimateRatio("sz", field, dims, errprop.AbsLinf, 1e-4, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 1 {
		t.Fatalf("estimated ratio %v", est)
	}
	res, err := errprop.Autotune(net, field, dims, autotune.Options{
		Tol: 1e-2, Norm: errprop.NormLinf, Codec: "sz"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.PredTotal <= 0 {
		t.Fatalf("autotune returned degenerate result: %+v", res.Best)
	}
}

func TestFacadeFoldBatchNorm(t *testing.T) {
	spec := &errprop.Spec{Name: "f", InputDim: 2 * 4 * 4, Layers: []errprop.LayerSpec{
		{Type: "conv", Name: "c", C: 2, H: 4, W: 4, OutC: 3, K: 3, Stride: 1, Pad: 1},
		{Type: "bn", Name: "bn", C: 3, H: 4, W: 4},
		{Type: "act", Act: errprop.ActReLU},
	}}
	net, err := spec.Build(21)
	if err != nil {
		t.Fatal(err)
	}
	folded, err := errprop.FoldBatchNorm(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(folded.Layers) != 2 { // conv+bn merged, act kept
		t.Fatalf("folded layers = %d, want 2", len(folded.Layers))
	}
	// Folded network must be analyzable.
	if _, err := errprop.Analyze(folded, errprop.FP16); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePipelineConfigDirect(t *testing.T) {
	net := buildTrained(t)
	pipe, err := errprop.NewPipelineConfig(net, errprop.PipelineConfig{
		Codec: "zfp", Mode: errprop.AbsLinf, InputTol: 1e-4, Format: errprop.FP16})
	if err != nil {
		t.Fatal(err)
	}
	field := make([]float64, 4*64)
	for i := range field {
		field[i] = math.Cos(float64(i) / 13)
	}
	res, err := pipe.Infer(field, []int{4, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.InputLinf > 1e-4 {
		t.Fatalf("input error %v exceeds codec tolerance", res.InputLinf)
	}
}
