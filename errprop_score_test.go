package errprop_test

import (
	"math"
	"path/filepath"
	"testing"

	errprop "github.com/scidata/errprop"
)

// TestFacadeBulkScoring drives the full public bulk-scoring surface:
// write a chunked dataset with certified achieved errors, score it
// through a quantized model, and check the determinism and accounting
// contracts hold through the facade.
func TestFacadeBulkScoring(t *testing.T) {
	const features, samples = 6, 192
	net, err := errprop.MLPSpec("facade-score", []int{features, 12, 4}, errprop.ActTanh, true).Build(3)
	if err != nil {
		t.Fatal(err)
	}

	field := make([]float64, features*samples)
	for f := 0; f < features; f++ {
		for c := 0; c < samples; c++ {
			x := float64(c) / samples
			field[f*samples+c] = math.Sin(2*math.Pi*x*float64(f+1)) * math.Exp(-x)
		}
	}
	dir := t.TempDir()
	man, err := errprop.WriteScoreDataset(dir, field, features, errprop.ScoreDatasetConfig{
		Codec: "zfp", Mode: errprop.AbsLinf, Tol: 1e-3, ChunkSamples: 32,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The manifest written to disk round-trips through the facade reader.
	onDisk, err := errprop.ReadScoreManifest(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk.Chunks) != len(man.Chunks) || onDisk.Codec != "zfp" {
		t.Fatalf("manifest round trip drift: %+v", onDisk)
	}

	an, err := errprop.Analyze(net, errprop.FP16)
	if err != nil {
		t.Fatal(err)
	}
	budget := 4 * an.QuantizationBound()

	ref, err := errprop.ScoreFile(net, filepath.Join(dir, "MANIFEST"), errprop.ScoreConfig{
		Format: errprop.FP16, QoIBudget: budget, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Agg.Samples != samples {
		t.Fatalf("scored %d samples, want %d", ref.Agg.Samples, samples)
	}
	if ref.QuantBound != an.QuantizationBound() {
		t.Fatalf("facade quant bound %g != Analyze's %g", ref.QuantBound, an.QuantizationBound())
	}
	for i, cr := range ref.Chunks {
		if cr.Bound < ref.QuantBound {
			t.Fatalf("chunk %d bound %g below quantization floor %g", i, cr.Bound, ref.QuantBound)
		}
	}

	got, err := errprop.Score(net, man, errprop.ScoreConfig{
		Format: errprop.FP16, QoIBudget: budget, Workers: 4, Dir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Chunks) != len(ref.Chunks) {
		t.Fatalf("worker counts disagree on chunk count")
	}
	for i := range got.Chunks {
		for d := range got.Chunks[i].Sum {
			if math.Float64bits(got.Chunks[i].Sum[d]) != math.Float64bits(ref.Chunks[i].Sum[d]) {
				t.Fatalf("chunk %d differs across worker counts", i)
			}
		}
		if got.Chunks[i].Bound != ref.Chunks[i].Bound {
			t.Fatalf("chunk %d certified bound differs across worker counts", i)
		}
	}
	if math.Float64bits(got.Agg.BoundWeighted) != math.Float64bits(ref.Agg.BoundWeighted) {
		t.Fatal("aggregate bound accounting differs across worker counts")
	}
}
