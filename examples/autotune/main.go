// Autotune: the optimization step the paper names as future work —
// automatically pick the tolerance split between quantization and
// compression that maximizes predicted end-to-end throughput. Trains the
// H2 surrogate, then compares the optimizer's choice against the fixed
// 10%/50%/90% allocations of Figs. 11-15, and finally verifies the
// chosen configuration's QoI guarantee by running the real pipeline.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"math"

	errprop "github.com/scidata/errprop"
	"github.com/scidata/errprop/internal/autotune"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/dataset"
	"github.com/scidata/errprop/internal/nn"
)

func main() {
	train := dataset.H2Combustion(32, 101)
	spec := errprop.MLPSpec("h2", []int{9, 50, 50, 9}, errprop.ActTanh, true)
	net, err := spec.Build(1)
	if err != nil {
		panic(err)
	}
	fmt.Println("training the H2 surrogate...")
	opt := nn.NewSGD(0.05, 0.9, 0)
	for epoch := 0; epoch < 150; epoch++ {
		for lo := 0; lo < train.N(); lo += 256 {
			hi := lo + 256
			if hi > train.N() {
				hi = train.N()
			}
			x, y := train.Batch(lo, hi)
			net.ZeroGrad()
			out := net.Forward(x, true)
			_, grad := nn.MSELoss(out, y)
			net.AddRegGrad(1e-4)
			net.Backward(grad)
			opt.Step(net.Params())
		}
	}
	net.RefreshSigmas()

	// A production-scale input block (384x384 grid, ~10 MB).
	big := dataset.H2Combustion(384, 777)
	field, dims := big.FieldData(), big.FieldDims

	tol := 1e-2
	fmt.Printf("\nsearching allocations for QoI tolerance %g (Linf), codec sz:\n\n", tol)
	res, err := errprop.Autotune(net, field, dims, autotune.Options{
		Tol: tol, Norm: core.NormLinf, Codec: "sz"})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-8s %-7s %-10s %-12s %-12s %-12s\n",
		"alloc", "format", "est ratio", "IO GB/s", "exec GB/s", "total GB/s")
	for _, c := range res.Candidates {
		marker := " "
		//lint:ignore floatcompare Fraction is copied verbatim from the sweep grid; identity check, not arithmetic
		if c.Fraction == res.Best.Fraction {
			marker = "*"
		}
		fmt.Printf("%-7.2f%s %-7s %-10.1f %-12.2f %-12.2f %-12.2f\n",
			c.Fraction, marker, c.Plan.Format, c.EstRatio,
			c.PredIO/1e9, c.PredExec/1e9, c.PredTotal/1e9)
	}
	fmt.Printf("\noptimizer picks allocation %.2f (%s) at %.2f GB/s predicted\n",
		res.Best.Fraction, res.Best.Plan.Format, res.Best.PredTotal/1e9)

	// Execute the chosen configuration and verify the guarantee.
	pipe, err := errprop.NewPipeline(net, res.Best.Plan, "sz", errprop.NormLinf)
	if err != nil {
		panic(err)
	}
	out, err := pipe.Infer(field, dims)
	if err != nil {
		panic(err)
	}
	ref := net.Forward(big.FromFieldData(field), false)
	var worst float64
	for i := range ref.Data {
		if d := math.Abs(out.Output.Data[i] - ref.Data[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("\nexecuted: ratio %.1fx, measured total %.2f GB/s\n", out.Ratio, out.TotalThroughput/1e9)
	fmt.Printf("achieved QoI error %.2e <= tolerance %g: %v\n", worst, tol, worst <= tol)
}
