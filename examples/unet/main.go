// UNet: error-bounded inference through a U-Net — the architecture
// family the paper's future work targets. Trains a small U-Net to map
// mixture-fraction patches to dissipation-rate patches (field-to-field),
// then shows the skip-concatenation error-flow rule in action: predicted
// bounds versus achieved errors for compressed inputs and quantized
// weights.
//
//	go run ./examples/unet
package main

import (
	"fmt"
	"math"

	errprop "github.com/scidata/errprop"
	"github.com/scidata/errprop/internal/dataset"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/tensor"
)

const patch = 16

func main() {
	// Cut 16x16 patches from a Borghesi field: channel 0 of X -> output
	// 0 of Y (mixture fraction -> chi_Z).
	d := dataset.BorghesiFlame(64, 1001)
	grid := 64
	per := grid / patch
	n := per * per
	x := tensor.NewMatrix(patch*patch, n)
	y := tensor.NewMatrix(patch*patch, n)
	idx := 0
	for py := 0; py < per; py++ {
		for px := 0; px < per; px++ {
			for i := 0; i < patch; i++ {
				for j := 0; j < patch; j++ {
					g := (py*patch+i)*grid + px*patch + j
					x.Set(i*patch+j, idx, d.X.At(0, g))
					y.Set(i*patch+j, idx, d.Y.At(0, g))
				}
			}
			idx++
		}
	}

	spec := nn.UNetSpec("unet", 1, patch, patch, 1, 6, errprop.ActTanh, true)
	net, err := spec.Build(7)
	if err != nil {
		panic(err)
	}
	fmt.Println("training the field-to-field U-Net surrogate...")
	opt := nn.NewAdam(3e-3)
	var loss float64
	for epoch := 0; epoch < 250; epoch++ {
		net.ZeroGrad()
		out := net.Forward(x, true)
		var grad *tensor.Matrix
		loss, grad = nn.MSELoss(out, y)
		net.AddRegGrad(1e-3)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	net.RefreshSigmas()
	fmt.Printf("final training MSE: %.5f\n\n", loss)

	an, err := errprop.Analyze(net, errprop.FP16)
	if err != nil {
		panic(err)
	}
	fmt.Printf("U-Net Lipschitz bound (with the sqrt(1+L^2) concat rule): %.3f\n", an.Lipschitz())
	fmt.Printf("FP16 quantization bound: %.3e\n\n", an.QuantizationBound())

	// Compress the input patches and quantize the weights; verify.
	einf := 1e-4
	blob, err := errprop.Compress("zfp", x.Data, []int{x.Rows, x.Cols}, errprop.AbsLinf, einf)
	if err != nil {
		panic(err)
	}
	recon, err := errprop.Decompress(blob)
	if err != nil {
		panic(err)
	}
	qnet, err := errprop.Quantize(net, errprop.FP16)
	if err != nil {
		panic(err)
	}
	ref := net.Forward(x, false)
	got := qnet.Forward(tensor.NewMatrixFrom(x.Rows, x.Cols, recon), false)
	var worst float64
	for i := range ref.Data {
		if dd := math.Abs(got.Data[i] - ref.Data[i]); dd > worst {
			worst = dd
		}
	}
	bound := an.BoundLinf(einf)
	fmt.Printf("zfp@%.0e + fp16: achieved QoI error %.3e, bound %.3e -> holds: %v (gap %.0fx)\n",
		einf, worst, bound, worst <= bound, bound/worst)
}
