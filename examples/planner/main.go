// Planner: sweep user QoI tolerances and allocation strategies on the
// Borghesi dissipation-rate task and print the planner's decisions — the
// scenario behind Figs. 11-15. Shows how the chosen quantization format
// climbs the speed ladder as the tolerance loosens, and how unused
// quantization budget is recycled into compression.
//
//	go run ./examples/planner
package main

import (
	"fmt"
	"math"

	errprop "github.com/scidata/errprop"
	"github.com/scidata/errprop/internal/dataset"
	"github.com/scidata/errprop/internal/nn"
)

func main() {
	train := dataset.BorghesiFlame(32, 303)
	dims := []int{13, 32, 32, 32, 32, 32, 32, 32, 32, 3}
	spec := errprop.MLPSpec("borghesi", dims, errprop.ActPReLU, true)
	net, err := spec.Build(1234)
	if err != nil {
		panic(err)
	}
	for _, p := range net.Params() { // deep-net PSN recipe
		if len(p.Data) == 1 && p.Name[len(p.Name)-5:] == "alpha" {
			p.Data[0] = 1.15
		}
	}
	fmt.Println("training the dissipation-rate surrogate (8 hidden layers, Adam)...")
	opt := nn.NewAdam(2e-3)
	for epoch := 0; epoch < 160; epoch++ {
		for lo := 0; lo < train.N(); lo += 256 {
			hi := lo + 256
			if hi > train.N() {
				hi = train.N()
			}
			x, y := train.Batch(lo, hi)
			net.ZeroGrad()
			out := net.Forward(x, true)
			_, grad := nn.MSELoss(out, y)
			net.AddRegGrad(1e-2)
			net.Backward(grad)
			opt.Step(net.Params())
		}
	}
	net.RefreshSigmas()

	an, err := errprop.Analyze(net, errprop.FP32)
	if err != nil {
		panic(err)
	}
	fmt.Printf("trained Lipschitz bound: %.3f\n\n", an.Lipschitz())

	fmt.Printf("%-10s %-6s %-7s %-12s %-13s %-12s\n",
		"tolerance", "alloc", "format", "quant bound", "input tol", "pred bound")
	for _, tol := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
		for _, frac := range []float64{0.1, 0.5, 0.9} {
			plan, err := errprop.Plan(net, errprop.PlanRequest{
				Tol: tol, Norm: errprop.NormLinf, QuantFraction: frac})
			if err != nil {
				panic(err)
			}
			inputTol := fmt.Sprintf("%.3e", plan.InputTolLinf)
			if math.IsInf(plan.InputTolLinf, 0) {
				inputTol = "uncompressed"
			}
			fmt.Printf("%-10.0e %-6.1f %-7s %-12.3e %-13s %-12.3e\n",
				tol, frac, plan.Format, plan.QuantBound, inputTol, plan.TotalBound)
		}
	}
	fmt.Println("\nnote: rows with the same format within a tolerance coincide when the")
	fmt.Println("allocation differences fall between two discrete format bounds —")
	fmt.Println("the overlap the paper points out in Figs. 11-15.")
}
