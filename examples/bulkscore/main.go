// Bulkscore: write a chunked compressed dataset with certified achieved
// errors, score it through a quantized model with per-chunk certified
// QoI bounds, kill the run halfway, resume it from its cursor, and show
// that the resumed run's results are bit-identical to an uninterrupted
// one.
//
//	go run ./examples/bulkscore
package main

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	errprop "github.com/scidata/errprop"
)

func main() {
	if err := demo(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

var errKilled = errors.New("simulated crash")

func demo() error {
	work, err := os.MkdirTemp("", "bulkscore")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	// 1. A synthetic 6-feature scientific field, written as a chunked
	//    SZ-compressed dataset. Each chunk's *achieved* reconstruction
	//    error is measured against the original and certified into the
	//    manifest.
	const features, samples = 6, 2048
	field := make([]float64, features*samples)
	for f := 0; f < features; f++ {
		for c := 0; c < samples; c++ {
			x := float64(c) / samples
			field[f*samples+c] = math.Sin(2*math.Pi*x*float64(f+1)) * math.Exp(-x)
		}
	}
	ds := filepath.Join(work, "ds")
	man, err := errprop.WriteScoreDataset(ds, field, features, errprop.ScoreDatasetConfig{
		Codec: "sz", Mode: errprop.AbsLinf, Tol: 1e-3, ChunkSamples: 128,
	})
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d chunks, achieved linf <= %g (requested %g)\n",
		len(man.Chunks), maxAchieved(man), man.Tol)

	// 2. A model to score with, served in FP16.
	net, err := errprop.MLPSpec("bulk", []int{features, 32, 4}, errprop.ActTanh, true).Build(7)
	if err != nil {
		return err
	}
	an, err := errprop.Analyze(net, errprop.FP16)
	if err != nil {
		return err
	}
	// Budget: what Inequality (3) predicts for the requested codec
	// tolerance, with a little headroom — so intact chunks land within
	// budget and any chunk whose achieved error were worse would not.
	budget := 1.2 * an.BoundLinf(man.Tol)
	base := errprop.ScoreConfig{Format: errprop.FP16, QoIBudget: budget, Dir: ds}

	// 3. Reference: one uninterrupted run.
	ref, err := errprop.Score(net, man, base)
	if err != nil {
		return err
	}
	fmt.Printf("reference: mean bound %.3g, max bound %.3g, %d/%d chunks within budget %.3g\n",
		ref.Agg.MeanBound(), ref.Agg.MaxBound, ref.Agg.Chunks-ref.Agg.OverBudget, ref.Agg.Chunks, budget)

	// 4. Crash drill: same scoring with a cursor directory, killed after
	//    5 committed chunks...
	crash := base
	crash.CursorDir = filepath.Join(work, "cursors")
	crash.CheckpointEvery = 2
	commits := 0
	crash.OnChunk = func(*errprop.ScoreChunkResult) error {
		if commits++; commits >= 5 {
			return errKilled
		}
		return nil
	}
	if _, err := errprop.Score(net, man, crash); !errors.Is(err, errKilled) {
		return fmt.Errorf("crash run: %v", err)
	}

	// 5. ...then resumed from the newest intact cursor.
	resume := base
	resume.CursorDir = crash.CursorDir
	res, err := errprop.Score(net, man, resume)
	if err != nil {
		return err
	}
	fmt.Printf("resumed at chunk %d\n", res.ResumedFrom)

	// 6. The resumed aggregate is bit-identical to the reference.
	for d := range ref.Agg.Sum {
		if math.Float64bits(ref.Agg.Sum[d]) != math.Float64bits(res.Agg.Sum[d]) {
			return fmt.Errorf("aggregate differs at output %d", d)
		}
	}
	if math.Float64bits(ref.Agg.BoundWeighted) != math.Float64bits(res.Agg.BoundWeighted) {
		return fmt.Errorf("bound accounting differs")
	}
	fmt.Println("kill + resume: aggregate and certified bounds bit-identical")
	return nil
}

func maxAchieved(man *errprop.ScoreManifest) float64 {
	var m float64
	for _, c := range man.Chunks {
		if c.AchievedLinf > m {
			m = c.AchievedLinf
		}
	}
	return m
}
