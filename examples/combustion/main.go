// Combustion: the paper's headline scenario end to end. Train the
// 9-species hydrogen reaction-rate surrogate (two hidden layers of 50,
// Tanh, SGD — the architecture from the paper's introduction), hand the
// planner a QoI tolerance, and run the resulting compressed + quantized
// inference pipeline, reporting phase throughputs and the verified QoI
// error.
//
//	go run ./examples/combustion
package main

import (
	"fmt"
	"math"
	"os"

	errprop "github.com/scidata/errprop"
	"github.com/scidata/errprop/internal/dataset"
	"github.com/scidata/errprop/internal/nn"
)

func main() {
	// Synthetic single-vortex H2 data (see DESIGN.md for the substitution
	// rationale): 9 species mass fractions -> 9 reaction rates.
	train := dataset.H2Combustion(32, 101)
	test := dataset.H2Combustion(24, 707)

	spec := errprop.MLPSpec("h2", []int{9, 50, 50, 9}, errprop.ActTanh, true)
	net, err := spec.Build(1)
	if err != nil {
		panic(err)
	}
	fmt.Println("training the reaction-rate surrogate...")
	opt := nn.NewSGD(0.05, 0.9, 0)
	for epoch := 0; epoch < 150; epoch++ {
		for lo := 0; lo < train.N(); lo += 256 {
			hi := min(lo+256, train.N())
			x, y := train.Batch(lo, hi)
			net.ZeroGrad()
			out := net.Forward(x, true)
			_, grad := nn.MSELoss(out, y)
			net.AddRegGrad(1e-4)
			net.Backward(grad)
			opt.Step(net.Params())
		}
	}
	net.RefreshSigmas()
	x, y := test.Batch(0, test.N())
	mse, _ := nn.MSELoss(net.Forward(x, false), y)
	fmt.Printf("test MSE: %.5f\n\n", mse)

	// Plan for a 1e-3 QoI tolerance (the paper's turning point), giving
	// quantization half the budget.
	tol := 1e-3
	plan, err := errprop.Plan(net, errprop.PlanRequest{
		Tol: tol, Norm: errprop.NormLinf, QuantFraction: 0.5, Conservative: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("planner decision for QoI tolerance %g (Linf):\n", tol)
	fmt.Printf("  quantization format: %s (predicted bound %.2e)\n", plan.Format, plan.QuantBound)
	fmt.Printf("  compression budget:  %.2e -> input tol %.2e\n\n", plan.CompressBudget, plan.InputTolLinf)

	pipe, err := errprop.NewPipeline(net, plan, "sz", errprop.NormLinf)
	if err != nil {
		panic(err)
	}
	res, err := pipe.Infer(test.FieldData(), test.FieldDims)
	if err != nil {
		panic(err)
	}
	fmt.Printf("pipeline over %d grid points:\n", res.Samples)
	fmt.Printf("  compression ratio: %.1fx\n", res.Ratio)
	fmt.Printf("  I/O phase:         %v (%.2f GB/s)\n", res.IO, res.IOThroughput/1e9)
	fmt.Printf("  preprocess phase:  %v (%.2f GB/s)\n", res.Preprocess, res.PreprocessThroughput/1e9)
	fmt.Printf("  execution phase:   %v (%.2f GB/s)\n", res.Exec, res.ExecThroughput/1e9)
	fmt.Printf("  total throughput:  %.2f GB/s\n\n", res.TotalThroughput/1e9)

	// Verify the end-to-end guarantee against full-precision inference on
	// pristine inputs.
	ref := net.Forward(test.FromFieldData(test.FieldData()), false)
	var worst float64
	for i := range ref.Data {
		if d := math.Abs(res.Output.Data[i] - ref.Data[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("achieved QoI error: %.2e (tolerance %g) -> within bound: %v\n", worst, tol, worst <= tol)
	if worst > tol {
		os.Exit(1)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
