// Quickstart: build a small PSN network, train it on a toy regression,
// predict error bounds for compression + quantization, then verify
// empirically that the achieved errors stay inside the bounds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"math/rand"

	errprop "github.com/scidata/errprop"
	"github.com/scidata/errprop/internal/tensor"
)

func main() {
	// 1. A 4-input, 2-output MLP with parameterized spectral
	//    normalization (Eq. 6 of the paper) on every layer.
	spec := errprop.MLPSpec("quickstart", []int{4, 32, 32, 2}, errprop.ActTanh, true)
	net, err := spec.Build(1)
	if err != nil {
		panic(err)
	}

	// 2. Train on a smooth target with the spectral penalty.
	//lint:ignore unseededrand the quickstart demo pins its seed so the printed output is stable run to run
	rng := rand.New(rand.NewSource(2))
	x := tensor.NewMatrix(4, 256)
	y := tensor.NewMatrix(2, 256)
	for c := 0; c < 256; c++ {
		var s float64
		for r := 0; r < 4; r++ {
			v := rng.Float64()*2 - 1
			x.Set(r, c, v)
			s += v
		}
		y.Set(0, c, math.Sin(2*s))
		y.Set(1, c, math.Exp(-s*s))
	}
	for epoch := 0; epoch < 400; epoch++ {
		net.ZeroGrad()
		out := net.Forward(x, true)
		grad := tensor.NewMatrix(2, 256)
		var loss float64
		for i := range grad.Data {
			d := out.Data[i] - y.Data[i]
			loss += d * d
			grad.Data[i] = d / 256
		}
		net.AddRegGrad(1e-4) // PSN spectral penalty
		net.Backward(grad)
		for _, p := range net.Params() {
			for i := range p.Data {
				p.Data[i] -= 0.1 * p.Grad[i]
			}
		}
		if epoch%100 == 0 {
			fmt.Printf("epoch %3d  loss %.5f\n", epoch, loss/512)
		}
	}
	net.RefreshSigmas()

	// 3. Predict bounds before touching the data or the weights.
	an, err := errprop.Analyze(net, errprop.FP16)
	if err != nil {
		panic(err)
	}
	einf := 1e-4 // pointwise input error the compressor will be allowed
	fmt.Printf("\nLipschitz bound:            %.4f\n", an.Lipschitz())
	fmt.Printf("compression bound (Linf):   %.3e\n", an.CompressionBoundLinf(einf))
	fmt.Printf("quantization bound (fp16):  %.3e\n", an.QuantizationBound())
	fmt.Printf("combined bound (Ineq. 3):   %.3e\n", an.BoundLinf(einf))

	// 4. Actually compress the inputs (SZ) and quantize the weights
	//    (FP16), then measure what really happened.
	field := make([]float64, 4*256)
	copy(field, x.Data)
	blob, err := errprop.Compress("sz", field, []int{4, 16, 16}, errprop.AbsLinf, einf)
	if err != nil {
		panic(err)
	}
	recon, err := errprop.Decompress(blob)
	if err != nil {
		panic(err)
	}
	qnet, err := errprop.Quantize(net, errprop.FP16)
	if err != nil {
		panic(err)
	}
	ref := net.Forward(x, false)
	got := qnet.Forward(tensor.NewMatrixFrom(4, 256, recon), false)
	var worst float64
	for i := range ref.Data {
		if d := math.Abs(got.Data[i] - ref.Data[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("\nachieved QoI error (Linf):  %.3e\n", worst)
	fmt.Printf("bound holds:                %v (gap %.1fx)\n",
		worst <= an.BoundLinf(einf), an.BoundLinf(einf)/worst)
}
