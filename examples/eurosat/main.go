// EuroSAT: multispectral land-cover classification with compressed
// inputs and quantized weights. The QoI is the final feature map (as in
// the paper); the example shows that classification accuracy survives
// reduction chosen by the error analysis, and that the feature-map
// perturbation stays within the predicted bound.
//
//	go run ./examples/eurosat
package main

import (
	"fmt"
	"math"

	errprop "github.com/scidata/errprop"
	"github.com/scidata/errprop/internal/dataset"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/tensor"
)

const size = 8

func main() {
	train := dataset.EuroSAT(80, size, 505)
	test := dataset.EuroSAT(40, size, 909)

	// A reduced ResNet-18 topology (two stages of basic blocks) with PSN.
	spec := errprop.ResNetSpec("eurosat", dataset.EuroSATBands, size, size, 10,
		[]int{1, 1}, []int{8, 16}, errprop.ActReLU, true)
	net, err := spec.Build(4321)
	if err != nil {
		panic(err)
	}
	for _, p := range net.Params() { // PSN recipe: start alphas near 1
		if len(p.Data) == 1 && p.Name[len(p.Name)-5:] == "alpha" {
			p.Data[0] = 1.5
		}
	}
	fmt.Println("training the land-cover classifier...")
	opt := nn.NewSGD(0.01, 0.9, 0)
	for epoch := 0; epoch < 60; epoch++ {
		for lo := 0; lo < train.N(); lo += 20 {
			hi := min(lo+20, train.N())
			x, labels := train.BatchMatrix(lo, hi)
			net.ZeroGrad()
			out := net.Forward(x, true)
			_, grad := nn.CrossEntropyLoss(out, labels)
			net.AddRegGrad(1e-3)
			net.Backward(grad)
			opt.Step(net.Params())
		}
	}
	net.RefreshSigmas()

	x, labels := test.BatchMatrix(0, test.N())
	baseAcc := nn.Accuracy(net.Forward(x, false), labels)
	fmt.Printf("clean FP32 accuracy: %.2f\n\n", baseAcc)

	// Analyze the feature-map QoI under FP16 weights.
	feat := net.FeatureNetwork()
	an, err := errprop.Analyze(feat, errprop.FP16)
	if err != nil {
		panic(err)
	}
	einf := 1e-3 // pointwise tolerance handed to the image compressor
	bound := an.BoundLinf(einf)
	fmt.Printf("feature-map QoI bound at input tol %g + fp16: %.3e\n\n", einf, bound)

	// Compress every test image with ZFP, quantize the model to FP16,
	// and compare accuracy and feature drift.
	qnet, err := errprop.Quantize(net, errprop.FP16)
	if err != nil {
		panic(err)
	}
	qfeat := qnet.FeatureNetwork()
	correct, worstDrift := 0, 0.0
	var totalRatio float64
	for i := 0; i < test.N(); i++ {
		field, dims := test.ImageField(i)
		blob, err := errprop.Compress("zfp", field, dims, errprop.AbsLinf, einf)
		if err != nil {
			panic(err)
		}
		recon, err := errprop.Decompress(blob)
		if err != nil {
			panic(err)
		}
		totalRatio += float64(len(field)*8) / float64(len(blob))

		xi := tensor.NewMatrixFrom(len(field), 1, recon)
		logits := qnet.Forward(xi, false)
		if argmax(logits) == test.Labels[i] {
			correct++
		}
		// Feature drift vs full-precision features of the pristine image.
		ref := feat.Forward(tensor.NewMatrixFrom(len(field), 1, field), false)
		got := qfeat.Forward(xi, false)
		drift := tensor.Vector(got.Data).Sub(tensor.Vector(ref.Data)).Norm2()
		if drift > worstDrift {
			worstDrift = drift
		}
	}
	fmt.Printf("zfp ratio (avg):          %.1fx\n", totalRatio/float64(test.N()))
	fmt.Printf("reduced-pipeline accuracy: %.2f (clean %.2f)\n",
		float64(correct)/float64(test.N()), baseAcc)
	fmt.Printf("worst feature drift:       %.3e (bound %.3e) within: %v\n",
		worstDrift, bound, worstDrift <= bound)

	// Simulated execution speedup from FP16 on the Ampere card.
	s := errprop.ExecThroughput(net, errprop.RTX3080Ti, errprop.FP16, 64) /
		errprop.ExecThroughput(net, errprop.RTX3080Ti, errprop.FP32, 64)
	fmt.Printf("fp16 execution speedup:    %.2fx (simulated RTX 3080 Ti)\n", s)
}

func argmax(m *tensor.Matrix) int {
	best, idx := math.Inf(-1), -1
	for r := 0; r < m.Rows; r++ {
		if v := m.At(r, 0); v > best {
			best, idx = v, r
		}
	}
	return idx
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
