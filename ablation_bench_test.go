package errprop_test

import (
	"fmt"
	"math"
	"testing"

	errprop "github.com/scidata/errprop"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/dataset"
	"github.com/scidata/errprop/internal/experiments"
	"github.com/scidata/errprop/internal/numfmt"
)

// Ablation benchmarks for the design choices DESIGN.md calls out. They
// report their findings via b.ReportMetric / b.Log so a -bench run
// doubles as an ablation study.

// BenchmarkAblationPSNTightness quantifies what parameterized spectral
// normalization buys: the bound/achieved ratio per training variant on
// the Borghesi task (deep MLP — the regime where PSN matters most).
func BenchmarkAblationPSNTightness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, v := range []experiments.Variant{experiments.PSN, experiments.Plain, experiments.WeightDecay} {
			task := experiments.Borghesi(v)
			an, err := core.AnalyzeNetwork(task.Net, numfmt.FP32)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("variant %-5s: Lipschitz bound %.4g", v, an.Lipschitz())
			}
		}
	}
}

// BenchmarkAblationGroupedINT8 compares the quantization bound across
// granularities on the H2 model.
func BenchmarkAblationGroupedINT8(b *testing.B) {
	task := experiments.H2(experiments.PSN)
	for i := 0; i < b.N; i++ {
		for _, g := range []errprop.Granularity{errprop.PerTensor, errprop.PerRow, errprop.PerColumn, errprop.PerBlock} {
			an, err := errprop.AnalyzeGroupedINT8(task.Net, g, 64)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("%-10s bound %.4g", g, an.QuantizationBound())
			}
		}
	}
}

// BenchmarkAblationAllocation sweeps the quantization allocation fraction
// finely on H2 to show where each format engages.
func BenchmarkAblationAllocation(b *testing.B) {
	task := experiments.H2(experiments.PSN)
	for i := 0; i < b.N; i++ {
		for _, frac := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
			plan, err := errprop.Plan(task.Net, errprop.PlanRequest{
				Tol: 1e-2 * task.QoIScaleLinf, Norm: errprop.NormLinf, QuantFraction: frac})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("alloc %.2f -> %s (quant bound %.3g, input tol %.3g)",
					frac, plan.Format, plan.QuantBound, plan.InputTolLinf)
			}
		}
	}
}

// BenchmarkAblationCodecRatio compares the three codecs' compression
// ratios on the same H2 field across tolerances — the raw material
// behind Figs. 7 and 11-15.
func BenchmarkAblationCodecRatio(b *testing.B) {
	d := dataset.H2Combustion(96, 7)
	field, dims := d.FieldData(), d.FieldDims
	for i := 0; i < b.N; i++ {
		for _, codec := range errprop.Codecs() {
			for _, tol := range []float64{1e-3, 1e-6} {
				blob, err := errprop.Compress(codec, field, dims, errprop.AbsLinf, tol)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%-6s tol %g: ratio %.1f", codec, tol, float64(len(field)*8)/float64(len(blob)))
				}
			}
		}
	}
}

// BenchmarkAblationNormConversion measures how much of the Linf bound's
// looseness comes from the sqrt(n0) norm conversion versus the Lipschitz
// product, per task.
func BenchmarkAblationNormConversion(b *testing.B) {
	names := []string{"H2Combustion(9)", "Borghesi(13)", "EuroSAT(832)"}
	tasks := []interface {
		InputDim() int
		Lipschitz() float64
	}{}
	h2, _ := core.AnalyzeNetwork(experiments.H2(experiments.PSN).Net, numfmt.FP32)
	bf, _ := core.AnalyzeNetwork(experiments.Borghesi(experiments.PSN).Net, numfmt.FP32)
	es, _ := core.AnalyzeNetwork(experiments.EuroSAT(experiments.PSN).FeatureNet, numfmt.FP32)
	tasks = append(tasks, h2, bf, es)
	for i := 0; i < b.N; i++ {
		for k, an := range tasks {
			if i == 0 {
				b.Log(fmt.Sprintf("%-16s sqrt(n0)=%.1f lipschitz=%.3g",
					names[k], math.Sqrt(float64(an.InputDim())), an.Lipschitz()))
			}
		}
	}
}
