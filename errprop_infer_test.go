package errprop_test

import (
	"fmt"
	"math/rand"
	"testing"

	errprop "github.com/scidata/errprop"
	"github.com/scidata/errprop/internal/tensor"
)

// bitEqual reports exact floating-point equality — the property the
// compiled inference engine guarantees, so certified bounds computed
// against Network.Forward transfer to Engine.Forward verbatim.
func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randBatch(rng *rand.Rand, rows, cols int) *errprop.Matrix {
	x := errprop.NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = rng.Float64()*2 - 1
	}
	return x
}

// TestEngineBitIdenticalQuantized is the facade-level acceptance oracle
// for quantized models: for every weight format, an engine compiled from
// the quantized network must reproduce the quantized network's forward
// pass exactly — to the last bit — over seeded random batches. This is
// the property that lets a serving deployment quantize once at
// registration and still hand out the analysis-certified bounds.
func TestEngineBitIdenticalQuantized(t *testing.T) {
	specs := []*errprop.Spec{
		errprop.MLPSpec("q-mlp", []int{6, 20, 14, 3}, errprop.ActTanh, true),
		errprop.ResNetSpec("q-resnet", 1, 8, 8, 4, []int{1, 1}, []int{4, 8}, errprop.ActReLU, true),
	}
	formats := []errprop.Format{errprop.TF32, errprop.FP16, errprop.BF16, errprop.INT8}
	for _, spec := range specs {
		for _, f := range formats {
			t.Run(fmt.Sprintf("%s/%s", spec.Name, f), func(t *testing.T) {
				net, err := spec.Build(31)
				if err != nil {
					t.Fatal(err)
				}
				qnet, err := errprop.Quantize(net, f)
				if err != nil {
					t.Fatal(err)
				}
				eng, err := errprop.CompileInference(qnet, 8)
				if err != nil {
					t.Fatal(err)
				}
				// Sharded engines must hold the same quantized bit-identity:
				// shard count is a wall-clock knob, never a numbers knob.
				sharded := make([]*errprop.Engine, 0, 2)
				for _, sc := range []int{3, 8} {
					se, err := errprop.CompileInferenceSharded(qnet, 8, sc)
					if err != nil {
						t.Fatal(err)
					}
					sharded = append(sharded, se)
				}
				rng := rand.New(rand.NewSource(32))
				for _, batch := range []int{1, 5, 8} {
					x := randBatch(rng, net.InputDim, batch)
					want := qnet.Forward(x, false)
					got := eng.Forward(x)
					if got.Rows != want.Rows || got.Cols != want.Cols {
						t.Fatalf("batch %d: shape (%d,%d) != (%d,%d)",
							batch, got.Rows, got.Cols, want.Rows, want.Cols)
					}
					if !bitEqual(got.Data, want.Data) {
						t.Fatalf("batch %d: engine output not bit-identical to quantized Network.Forward", batch)
					}
					for _, se := range sharded {
						if sgot := se.Forward(x); !bitEqual(sgot.Data, want.Data) {
							t.Fatalf("batch %d shards=%d: sharded engine output not bit-identical to quantized Network.Forward",
								batch, se.Shards())
						}
					}
				}
			})
		}
	}
}

// TestFacadeInferShapes checks the exported static shape inference
// against built networks.
func TestFacadeInferShapes(t *testing.T) {
	spec := errprop.ResNetSpec("shape", 1, 8, 8, 5, []int{1, 1}, []int{4, 8}, errprop.ActReLU, false)
	out, err := errprop.InferShapes(spec)
	if err != nil {
		t.Fatal(err)
	}
	net, err := spec.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(net.InputDim, 2)
	if got := net.Forward(x, false).Rows; got != out {
		t.Fatalf("InferShapes = %d, built network outputs %d rows", out, got)
	}
	eng, err := errprop.CompileInference(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	if eng.OutputDim() != out {
		t.Fatalf("Engine.OutputDim() = %d, InferShapes = %d", eng.OutputDim(), out)
	}
}
