# Development and CI entry points. `make ci` is what the GitHub Actions
# workflow runs; every target works standalone.

GO ?= go

.PHONY: all build vet fmt-check test race fuzz-smoke lint ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints unformatted files; fail if any.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The experiments package trains small networks end to end; under the
# race detector that legitimately exceeds go test's default 10m per-binary
# timeout, so give the run headroom.
race:
	$(GO) test -race -timeout=45m ./...

# ~10s total fuzz smoke over the internal/compress fuzz targets: enough
# to catch a freshly introduced panic without stalling CI.
FUZZ_TARGETS = FuzzDecodeContainer FuzzHuffmanDecode FuzzSZRoundTrip
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		echo "fuzz $$t"; \
		$(GO) test -run='^$$' -fuzz="^$$t$$" -fuzztime=3s ./internal/compress || exit 1; \
	done

# The repo's own numeric-soundness/determinism analyzers (see README
# "Static analysis").
lint:
	$(GO) run ./cmd/errpropvet ./...

ci: build vet fmt-check race fuzz-smoke lint
