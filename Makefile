# Development and CI entry points. `make ci` is what the GitHub Actions
# workflow runs; every target works standalone.

GO ?= go

.PHONY: all build vet fmt-check test race fuzz-smoke lint vet-baseline-update serve-smoke score-smoke gateway-smoke bench-serve bench-train bench-infer bench-score bench-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints unformatted files; fail if any.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# -shuffle=on randomizes test (and subtest) execution order every run,
# flushing out inter-test state dependence; a failure log prints the seed
# to reproduce.
test:
	$(GO) test -shuffle=on ./...

# The experiments package trains small networks end to end; under the
# race detector that legitimately exceeds go test's default 10m per-binary
# timeout, so give the run headroom. Measured worst case: ~28m for the
# experiments binary on a one-core runner (multi-core runners finish
# sooner — the data-parallel trainer shards training across cores), so
# 35m is real slack while still failing a wedged binary within the job.
race:
	$(GO) test -race -shuffle=on -timeout=35m ./...

# ~24s total fuzz smoke, 3s per target: enough to catch a freshly
# introduced panic without stalling CI. Targets are pkg:Fuzz pairs;
# FuzzDecodeContainer exercises the checksummed v2 container framing
# (with v1 seeds for the legacy path), FuzzDecodeCheckpoint the
# crash-safe checkpoint decoder, and the two tensor targets are the
# differential kernel fuzzers: blocked/fused engine kernels must stay
# byte-exact against the naive reference loops over random shapes.
FUZZ_TARGETS = \
	./internal/compress:FuzzDecodeContainer \
	./internal/compress:FuzzHuffmanDecode \
	./internal/compress:FuzzSZRoundTrip \
	./internal/checkpoint:FuzzDecodeCheckpoint \
	./internal/score:FuzzDecodeManifest \
	./internal/score:FuzzDecodeCursor \
	./internal/gateway:FuzzDecodeRegistry \
	./internal/artifact:FuzzDecodeArtifact \
	./internal/tensor:FuzzMulIntoBlocked \
	./internal/tensor:FuzzIm2ColMatInto
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "fuzz $$fn ($$pkg)"; \
		$(GO) test -run='^$$' -fuzz="^$$fn$$" -fuzztime=3s $$pkg || exit 1; \
	done

# The repo's own numeric-soundness/determinism analyzers (see README
# "Static analysis"). The committed baseline tolerates recorded findings
# and fails only on NEW ones; keep it empty — it exists so a future
# analyzer can land before its backlog is burned down.
lint:
	$(GO) run ./cmd/errpropvet -baseline errpropvet.baseline.json ./...

# Re-record the lint baseline from the current tree. Run this only when
# deliberately accepting findings (and say why in the commit message).
vet-baseline-update:
	$(GO) run ./cmd/errpropvet -baseline errpropvet.baseline.json -update-baseline ./...

# End-to-end daemon smoke test: boot errpropd on a random port with the
# built-in demo model, hit /healthz and one /v1/predict, then verify the
# SIGTERM drain path exits 0.
serve-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/errpropd" ./cmd/errpropd; \
	"$$tmp/errpropd" -addr 127.0.0.1:0 -demo -format fp16 \
	  -portfile "$$tmp/port" >"$$tmp/log" 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	for i in $$(seq 1 100); do [ -s "$$tmp/port" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/port" ] || { echo "errpropd never wrote portfile"; cat "$$tmp/log"; exit 1; }; \
	addr=$$(cat "$$tmp/port"); \
	curl -fsS "http://$$addr/healthz" >/dev/null; \
	curl -fsS "http://$$addr/v1/predict" \
	  -d '{"model":"demo","inputs":[[0,0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8]],"tolerance":1e6}' \
	  | grep -q '"outputs"'; \
	kill -TERM $$pid; \
	wait $$pid || { echo "errpropd did not drain cleanly"; cat "$$tmp/log"; exit 1; }; \
	echo "serve-smoke OK ($$addr)"

# End-to-end bulk-scoring crash drill: write a tiny dataset, score it
# once for reference, score it again with a cursor dir but crash (exit 7)
# mid-run via -exit-after, resume, and require the result log and the
# deterministic summary to be byte-identical to the reference run's.
score-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/score" ./cmd/score; \
	"$$tmp/score" -write "$$tmp/ds" -codec sz -tol 1e-3 -samples 1024 -chunk 64 2>/dev/null; \
	"$$tmp/score" -manifest "$$tmp/ds/MANIFEST" -demo -format fp16 -budget 0.5 \
	  -out "$$tmp/ref.jsonl" -summary "$$tmp/ref.json" 2>/dev/null; \
	set +e; \
	"$$tmp/score" -manifest "$$tmp/ds/MANIFEST" -demo -format fp16 -budget 0.5 \
	  -out "$$tmp/res.jsonl" -summary "$$tmp/res.json" \
	  -cursor-dir "$$tmp/cur" -checkpoint-every 3 -exit-after 9 2>/dev/null; \
	code=$$?; set -e; \
	[ $$code -eq 7 ] || { echo "crash drill: want exit 7, got $$code"; exit 1; }; \
	ls "$$tmp/cur"/cursor-*.cur >/dev/null || { echo "crash run left no cursor"; exit 1; }; \
	"$$tmp/score" -manifest "$$tmp/ds/MANIFEST" -demo -format fp16 -budget 0.5 -workers 2 \
	  -out "$$tmp/res.jsonl" -summary "$$tmp/res.json" \
	  -cursor-dir "$$tmp/cur" -checkpoint-every 3 2>/dev/null; \
	cmp "$$tmp/ref.jsonl" "$$tmp/res.jsonl" || { echo "resumed result log differs from reference"; exit 1; }; \
	cmp "$$tmp/ref.json" "$$tmp/res.json" || { echo "resumed summary differs from reference"; exit 1; }; \
	echo "score-smoke OK (kill at chunk 9, resume bit-identical)"

# End-to-end fleet drill with real processes: boot errpropd -gateway
# over 2 spawned backends, predict through the gateway, SIGKILL one
# backend mid-fleet, keep predicting (every response must succeed — the
# gateway retries around the corpse until the supervisor respawns it),
# require /metrics to show the kill was seen (retries, probe failures,
# or backend failures) and the fleet back at 2 ready backends with
# breakers closed, then SIGTERM-drain the gateway and require exit 0.
gateway-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/errpropd" ./cmd/errpropd; \
	"$$tmp/errpropd" -gateway -spawn 2 -demo -format fp16 -probe 50ms \
	  -addr 127.0.0.1:0 -portfile "$$tmp/port" >"$$tmp/log" 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	for i in $$(seq 1 200); do [ -s "$$tmp/port" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/port" ] || { echo "gateway never wrote portfile"; cat "$$tmp/log"; exit 1; }; \
	addr=$$(cat "$$tmp/port"); \
	predict() { curl -fsS "http://$$addr/v1/predict" \
	  -d "{\"model\":\"demo\",\"inputs\":[[0,0.1,0.2,0.3,0.4,$$1,0.6,0.7,0.8]],\"tolerance\":1e6}" \
	  | grep -q '"outputs"'; }; \
	for i in $$(seq 1 100); do \
	  curl -fsS "http://$$addr/healthz" | grep -q '"ready":true' && break; sleep 0.1; done; \
	predict 0.50 || { echo "pre-kill predict failed"; cat "$$tmp/log"; exit 1; }; \
	victim=$$(pgrep -P $$pid | head -1); \
	[ -n "$$victim" ] || { echo "no backend child found"; cat "$$tmp/log"; exit 1; }; \
	kill -9 "$$victim"; \
	for i in $$(seq 1 30); do \
	  predict "0.$$i" || { echo "predict $$i after SIGKILL failed"; cat "$$tmp/log"; exit 1; }; done; \
	evidence=0; recovered=0; \
	for i in $$(seq 1 100); do \
	  m=$$(curl -fsS "http://$$addr/metrics"); \
	  e=$$(echo "$$m" | grep -o '"retries_total":[0-9]*\|"probe_failures_total":[0-9]*\|"failures_total":[0-9]*' \
	    | awk -F: '{s+=$$2} END {print s+0}'); \
	  [ "$$e" -gt 0 ] && evidence=1; \
	  closed=$$(echo "$$m" | grep -o '"breaker":"closed"' | wc -l); \
	  ready=$$(echo "$$m" | grep -o '"ready":true' | wc -l); \
	  if [ "$$closed" -eq 2 ] && [ "$$ready" -ge 2 ] && [ "$$evidence" -eq 1 ]; then recovered=1; break; fi; \
	  sleep 0.1; done; \
	[ "$$recovered" -eq 1 ] || { echo "fleet never recovered with kill evidence (evidence=$$evidence)"; \
	  curl -fsS "http://$$addr/metrics"; cat "$$tmp/log"; exit 1; }; \
	predict 0.99 || { echo "post-recovery predict failed"; cat "$$tmp/log"; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "gateway did not drain cleanly"; cat "$$tmp/log"; exit 1; }; \
	echo "gateway-smoke OK (SIGKILL absorbed, fleet recovered, drained)"

# Reproduce BENCH_score.json: simulated bulk-scoring throughput vs
# compression tolerance for sz/zfp/mgard (see README "Bulk scoring").
bench-score:
	ERRPROP_SCORE_BENCH_OUT=$(CURDIR)/BENCH_score.json \
	$(GO) test -run '^TestWriteScoreBenchJSON$$' -count=1 -v ./internal/score

# Reproduce BENCH_serve.json: the batched-vs-unbatched load comparison
# at 1/8/64 concurrent clients (see README "Serving").
bench-serve:
	ERRPROP_SERVE_BENCH_OUT=$(CURDIR)/BENCH_serve.json \
	$(GO) test -run '^TestWriteServeBenchJSON$$' -count=1 -v ./internal/serve

# Reproduce BENCH_train.json: the data-parallel trainer vs the legacy
# serial loop on the two paper regression models, sweeping worker counts
# and asserting the bit-identity invariant (see README "Training").
bench-train:
	ERRPROP_TRAIN_BENCH_OUT=$(CURDIR)/BENCH_train.json \
	$(GO) test -run '^TestWriteTrainBenchJSON$$' -count=1 -v ./internal/nn

# Reproduce BENCH_infer.json: Network.Forward vs the blocked/fused
# engine vs a 2-way-sharded engine on MLP/conv/attention shapes, with
# the PR 5 naive-kernel engine ratio as speedup anchor, plus served
# req/s on the engine-backed worker pool (see README "Inference
# engine").
bench-infer:
	ERRPROP_INFER_BENCH_OUT=$(CURDIR)/BENCH_infer.json \
	$(GO) test -run '^TestWriteInferBenchJSON$$' -count=1 -v ./internal/serve

# One-pass bench smoke: the legacy-vs-engine forward benchmarks — MLP,
# conv, attention, and the sharded-engine variant — must run (10
# iterations — correctness of the harness, not timing stability), so a
# refactor cannot silently break the benchmark surface.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkForward(Legacy|Engine)' -benchtime 10x ./internal/nn

ci: build vet fmt-check race fuzz-smoke lint serve-smoke score-smoke gateway-smoke bench-smoke
