package main

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	errprop "github.com/scidata/errprop"
	"github.com/scidata/errprop/internal/integrity"
)

func TestBackendArgsRoundTrip(t *testing.T) {
	args := backendArgs(backendFlags{
		format: "fp16", demo: true,
		models:   []modelFlag{{name: "h2", path: "/m/h2.model"}},
		maxBatch: 16, flush: 3 * time.Millisecond, queueCap: 256,
		workers: 2, shards: 1, timeout: 4 * time.Second,
	})
	want := []string{
		"-format", "fp16",
		"-max-batch", "16",
		"-flush", "3ms",
		"-queue", "256",
		"-workers", "2",
		"-engine-shards", "1",
		"-timeout", "4s",
		"-demo",
		"-model", "h2=/m/h2.model",
	}
	if !reflect.DeepEqual(args, want) {
		t.Fatalf("backendArgs:\n got  %q\n want %q", args, want)
	}
}

func TestRunGatewayRejectsBadFlags(t *testing.T) {
	// -spawn / -registry are gateway-only.
	if err := run([]string{"-spawn", "2", "-demo"}); err == nil {
		t.Fatal("-spawn without -gateway must fail")
	}
	if err := run([]string{"-registry", "/tmp/x.reg", "-demo"}); err == nil {
		t.Fatal("-registry without -gateway must fail")
	}
	// A gateway needs exactly one fleet source.
	if err := run([]string{"-gateway"}); err == nil {
		t.Fatal("-gateway with no fleet source must fail")
	}
	if err := run([]string{"-gateway", "-spawn", "2", "-registry", "/tmp/x.reg"}); err == nil {
		t.Fatal("-gateway with two fleet sources must fail")
	}
}

// TestRunGatewayRefusesCorruptRegistry: boot-time registry integrity is
// a hard failure, typed — the daemon must not come up routing nowhere.
func TestRunGatewayRefusesCorruptRegistry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.reg")
	reg := &errprop.GatewayRegistry{Backends: []errprop.GatewayBackend{
		{Name: "b0", Addr: "127.0.0.1:9001", Weight: 1},
	}}
	if err := errprop.WriteGatewayRegistry(path, reg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x08
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-gateway", "-registry", path, "-addr", "127.0.0.1:0"})
	if err == nil {
		t.Fatal("gateway booted on a corrupt registry")
	}
	if !errors.Is(err, integrity.ErrCorrupt) {
		t.Fatalf("corrupt-registry boot error is not typed: %v", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("boot error does not name the registry file: %v", err)
	}
}
