// Command errpropd is the error-propagation inference daemon: it loads
// one or more saved networks (nn.Save format), optionally quantizes
// them, and serves batched predictions over HTTP with per-request QoI
// error budgets (see internal/serve).
//
// Usage:
//
//	errpropd -addr :8080 -model h2=h2.model -model flame=flame.model -format fp16
//	errpropd -addr 127.0.0.1:0 -demo -portfile /tmp/errpropd.port
//
// Endpoints: GET /healthz, GET /metrics, GET /v1/models,
// POST /v1/predict (JSON or application/x-errprop-blob),
// POST /v1/plan.
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops accepting,
// in-flight and queued requests complete, workers exit, then the process
// exits 0.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	errprop "github.com/scidata/errprop"
)

// modelFlag is one -model name=path pair.
type modelFlag struct {
	name, path string
}

// parseModelFlag splits a -model argument of the form name=path.
func parseModelFlag(arg string) (modelFlag, error) {
	name, path, ok := strings.Cut(arg, "=")
	if !ok || name == "" || path == "" {
		return modelFlag{}, fmt.Errorf("-model wants name=path, got %q", arg)
	}
	return modelFlag{name: name, path: path}, nil
}

// demoNetwork builds the built-in demo model (the paper's H2-combustion
// MLP shape, deterministic untrained weights) so smoke tests need no
// model file.
func demoNetwork() (*errprop.Network, error) {
	return errprop.MLPSpec("demo", []int{9, 50, 50, 9}, errprop.ActTanh, false).Build(1)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// runCompile is -compile: the single blessed producer of ahead-of-time
// artifacts. Each -model (and -demo) is loaded, compiled at format f —
// quantization, op-program compilation, error-flow analysis, certified
// bound — and written to <out>/<name>.aot.
func runCompile(outDir string, f errprop.Format, models []modelFlag, demo bool) error {
	if demo {
		models = append(models, modelFlag{name: "demo"})
	}
	for _, m := range models {
		var net *errprop.Network
		var err error
		if m.path == "" {
			net, err = demoNetwork()
		} else {
			var raw []byte
			if raw, err = os.ReadFile(m.path); err != nil {
				return err
			}
			if errprop.IsArtifact(raw) {
				return fmt.Errorf("%s is already a compiled artifact", m.path)
			}
			net, err = errprop.LoadNetwork(bytes.NewReader(raw))
		}
		if err != nil {
			return fmt.Errorf("loading %s: %w", m.path, err)
		}
		art, err := errprop.BuildArtifact(net, f)
		if err != nil {
			return fmt.Errorf("compiling %q: %w", m.name, err)
		}
		path := filepath.Join(outDir, m.name+".aot")
		if err := errprop.WriteArtifactFile(path, art); err != nil {
			return err
		}
		log.Printf("compiled %q -> %s (format %s, certified bound %g, %s)", m.name, path, art.Format, art.QuantBound, art.Checksum)
	}
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("errpropd", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		format   = fs.String("format", "fp32", "serving weight format for all models (fp32|tf32|bf16|fp16|int8)")
		demo     = fs.Bool("demo", false, "also register a built-in demo model named \"demo\"")
		portfile = fs.String("portfile", "", "write the bound address to this file once listening")

		maxBatch = fs.Int("max-batch", 32, "micro-batch size limit")
		flush    = fs.Duration("flush", 2*time.Millisecond, "micro-batch flush deadline")
		queueCap = fs.Int("queue", 1024, "admission queue capacity per model")
		workers  = fs.Int("workers", 4, "inference engines per model")
		shards   = fs.Int("engine-shards", 1, "goroutines each engine splits a batch across (bit-identical for any value)")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-request timeout")

		compileMode = fs.Bool("compile", false, "compile each -model (and -demo) into an ahead-of-time artifact at -format instead of serving, then exit")
		outDir      = fs.String("out", ".", "compile: directory artifacts are written to, one <name>.aot per model")

		gatewayMode = fs.Bool("gateway", false, "run as a routing gateway over a fleet of errpropd backends instead of serving models directly")
		spawn       = fs.Int("spawn", 0, "gateway: spawn this many backend child processes (re-invoking this binary with the serving flags) and supervise them")
		registry    = fs.String("registry", "", "gateway: checksummed fleet manifest to route to; SIGHUP re-reads it (corrupt manifests are refused, keeping the current fleet)")
		probeEvery  = fs.Duration("probe", 250*time.Millisecond, "gateway: health-probe interval")
		retries     = fs.Int("retries", 3, "gateway: total send attempts per request, first try included")
		seed        = fs.Uint64("seed", 1, "gateway: retry-jitter seed (drills replay bit-identically for a fixed seed)")
	)
	var models []modelFlag
	fs.Func("model", "register a model as name=path (repeatable)", func(arg string) error {
		m, err := parseModelFlag(arg)
		if err != nil {
			return err
		}
		models = append(models, m)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gatewayMode {
		return runGateway(gatewayOpts{
			addr:       *addr,
			portfile:   *portfile,
			spawn:      *spawn,
			registry:   *registry,
			probeEvery: *probeEvery,
			retries:    *retries,
			seed:       *seed,
			backendArgs: backendArgs(backendFlags{
				format: *format, demo: *demo, models: models,
				maxBatch: *maxBatch, flush: *flush, queueCap: *queueCap,
				workers: *workers, shards: *shards, timeout: *timeout,
			}),
		})
	}
	if *spawn > 0 || *registry != "" {
		return fmt.Errorf("-spawn and -registry require -gateway")
	}
	if len(models) == 0 && !*demo {
		if *compileMode {
			return fmt.Errorf("nothing to compile: pass -model name=path and/or -demo")
		}
		return fmt.Errorf("nothing to serve: pass -model name=path and/or -demo")
	}
	var f errprop.Format
	switch strings.ToLower(*format) {
	case "fp32":
		f = errprop.FP32
	case "tf32":
		f = errprop.TF32
	case "bf16":
		f = errprop.BF16
	case "fp16":
		f = errprop.FP16
	case "int8":
		f = errprop.INT8
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if *compileMode {
		return runCompile(*outDir, f, models, *demo)
	}

	srv := errprop.NewServer(errprop.ServeConfig{
		MaxBatch:       *maxBatch,
		FlushInterval:  *flush,
		QueueCap:       *queueCap,
		Workers:        *workers,
		EngineShards:   *shards,
		RequestTimeout: *timeout,
	})
	for _, m := range models {
		raw, err := os.ReadFile(m.path)
		if err != nil {
			return err
		}
		if errprop.IsArtifact(raw) {
			// Ahead-of-time artifact: bind the shipped program to the
			// shipped weights; no recompilation, no re-analysis. The
			// artifact's baked-in format wins over -format. A corrupt
			// artifact is a boot refusal naming the file.
			art, err := errprop.DecodeArtifact(raw)
			if err != nil {
				return fmt.Errorf("refusing to boot: artifact %s: %w", m.path, err)
			}
			if err := srv.RegisterArtifact(m.name, art); err != nil {
				return err
			}
			log.Printf("registered %q from artifact %s (format %s, %s)", m.name, m.path, art.Format, art.Checksum)
			continue
		}
		net, err := errprop.LoadNetwork(bytes.NewReader(raw))
		if err != nil {
			return fmt.Errorf("loading %s: %w", m.path, err)
		}
		if err := srv.Register(m.name, net, f); err != nil {
			return err
		}
		log.Printf("registered %q from %s (format %s)", m.name, m.path, f)
	}
	if *demo {
		net, err := demoNetwork()
		if err != nil {
			return err
		}
		if err := srv.Register("demo", net, f); err != nil {
			return err
		}
		log.Printf("registered built-in demo model (format %s)", f)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	log.Printf("errpropd listening on %s", bound)
	if *portfile != "" {
		if err := os.WriteFile(*portfile, []byte(bound), 0o644); err != nil {
			return err
		}
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received; draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	srv.Close()
	log.Printf("drained; exiting")
	return nil
}
