// Gateway mode: errpropd -gateway routes /v1/* across a fleet of
// errpropd backends (internal/gateway) instead of serving models
// itself. The fleet comes from one of two places:
//
//   - -spawn N: the gateway re-invokes its own binary N times with the
//     serving flags, supervises the children, and respawns any that die
//     (the restarted child re-enters routing once a health probe sees
//     it ready and its circuit breaker re-closes).
//   - -registry path: a checksummed fleet manifest (see
//     errprop.WriteGatewayRegistry). SIGHUP re-reads it; a corrupt or
//     truncated manifest is refused with a typed integrity error and
//     the current fleet keeps serving — reloads apply atomically or
//     not at all.
//
// SIGINT/SIGTERM drains: the listener stops, in-flight proxied
// requests complete, children (if spawned) are SIGTERMed and reaped,
// then the process exits 0.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	errprop "github.com/scidata/errprop"
)

type gatewayOpts struct {
	addr        string
	portfile    string
	spawn       int
	registry    string
	probeEvery  time.Duration
	retries     int
	seed        uint64
	backendArgs []string
}

// backendFlags carries the serving flags a spawned backend inherits.
type backendFlags struct {
	format   string
	demo     bool
	models   []modelFlag
	maxBatch int
	flush    time.Duration
	queueCap int
	workers  int
	shards   int
	timeout  time.Duration
}

// backendArgs renders the serving flags back into argv form for a
// spawned child (minus -addr/-portfile, which the supervisor owns).
func backendArgs(f backendFlags) []string {
	args := []string{
		"-format", f.format,
		"-max-batch", strconv.Itoa(f.maxBatch),
		"-flush", f.flush.String(),
		"-queue", strconv.Itoa(f.queueCap),
		"-workers", strconv.Itoa(f.workers),
		"-engine-shards", strconv.Itoa(f.shards),
		"-timeout", f.timeout.String(),
	}
	if f.demo {
		args = append(args, "-demo")
	}
	for _, m := range f.models {
		args = append(args, "-model", m.name+"="+m.path)
	}
	return args
}

func runGateway(opts gatewayOpts) error {
	if (opts.spawn > 0) == (opts.registry != "") {
		return fmt.Errorf("gateway needs exactly one fleet source: -spawn N or -registry path")
	}

	g := errprop.NewGateway(errprop.GatewayConfig{
		ProbeInterval: opts.probeEvery,
		MaxAttempts:   opts.retries,
		Seed:          opts.seed,
	})
	defer g.Close()

	var sup *supervisor
	if opts.spawn > 0 {
		var err error
		sup, err = startSupervisor(g, opts.spawn, opts.backendArgs)
		if err != nil {
			return err
		}
		defer sup.stopAll()
	} else {
		if err := g.LoadRegistryFile(opts.registry); err != nil {
			return fmt.Errorf("loading registry %s: %w", opts.registry, err)
		}
		log.Printf("gateway fleet loaded from %s (%d backends)", opts.registry, len(g.Backends()))
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	log.Printf("errpropd gateway listening on %s", bound)
	if opts.portfile != "" {
		if err := os.WriteFile(opts.portfile, []byte(bound), 0o644); err != nil {
			return err
		}
	}

	httpSrv := &http.Server{Handler: g.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	for {
		select {
		case err := <-errc:
			return err
		case <-hup:
			if opts.registry == "" {
				log.Printf("SIGHUP ignored: fleet is supervised (-spawn), not manifest-driven")
				continue
			}
			if err := g.LoadRegistryFile(opts.registry); err != nil {
				// Detect-or-refuse: the running fleet is untouched.
				log.Printf("registry reload REFUSED (fleet unchanged): %v", err)
				continue
			}
			log.Printf("registry reloaded from %s (%d backends)", opts.registry, len(g.Backends()))
		case <-ctx.Done():
			log.Printf("signal received; draining gateway")
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := httpSrv.Shutdown(shutdownCtx); err != nil {
				return err
			}
			log.Printf("drained; exiting")
			return nil
		}
	}
}

// supervisor owns the -spawn fleet: N children of this binary, each on
// an ephemeral port, respawned on death.
type supervisor struct {
	g    *errprop.Gateway
	args []string
	dir  string

	mu       sync.Mutex
	backends map[string]errprop.GatewayBackend // name -> current address
	procs    map[string]*exec.Cmd
	stopping bool
	wg       sync.WaitGroup
}

func startSupervisor(g *errprop.Gateway, n int, args []string) (*supervisor, error) {
	dir, err := os.MkdirTemp("", "errpropd-gw-")
	if err != nil {
		return nil, err
	}
	s := &supervisor{
		g:        g,
		args:     args,
		dir:      dir,
		backends: make(map[string]errprop.GatewayBackend, n),
		procs:    make(map[string]*exec.Cmd, n),
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("backend-%d", i)
		if err := s.spawnOne(name); err != nil {
			s.stopAll()
			return nil, err
		}
	}
	return s, nil
}

// spawnOne starts (or restarts) the named child, waits for its
// portfile, and installs its address in the gateway's fleet.
func (s *supervisor) spawnOne(name string) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	portfile := filepath.Join(s.dir, name+".port")
	_ = os.Remove(portfile)
	argv := append([]string{"-addr", "127.0.0.1:0", "-portfile", portfile}, s.args...)
	cmd := exec.Command(self, argv...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawning %s: %w", name, err)
	}

	addr, err := awaitPortfile(portfile, 10*time.Second, cmd)
	if err != nil {
		_ = cmd.Process.Kill()
		return fmt.Errorf("%s: %w", name, err)
	}

	s.mu.Lock()
	s.backends[name] = errprop.GatewayBackend{Name: name, Addr: addr, Weight: 1}
	s.procs[name] = cmd
	list := make([]errprop.GatewayBackend, 0, len(s.backends))
	for _, b := range s.backends {
		list = append(list, b) //lint:ignore maporder SetBackends validates and sorts by name; install order is irrelevant
	}
	s.mu.Unlock()
	if err := s.g.SetBackends(list); err != nil {
		return err
	}
	log.Printf("gateway: %s up on %s (pid %d)", name, addr, cmd.Process.Pid)

	s.wg.Add(1)
	go s.reap(name, cmd)
	return nil
}

// reap waits for a child and respawns it unless the supervisor is
// shutting down — the in-process half of the kill-a-backend drill.
func (s *supervisor) reap(name string, cmd *exec.Cmd) {
	defer s.wg.Done()
	err := cmd.Wait()
	s.mu.Lock()
	stopping := s.stopping
	s.mu.Unlock()
	if stopping {
		return
	}
	log.Printf("gateway: %s died (%v); respawning", name, err)
	time.Sleep(100 * time.Millisecond)
	if rerr := s.spawnOne(name); rerr != nil {
		log.Printf("gateway: respawning %s failed: %v (its keys fail over to the rest of the fleet)", name, rerr)
	}
}

// stopAll SIGTERMs every child, waits for them to drain, and removes
// the portfile scratch dir.
func (s *supervisor) stopAll() {
	s.mu.Lock()
	s.stopping = true
	procs := make([]*exec.Cmd, 0, len(s.procs))
	for _, c := range s.procs {
		procs = append(procs, c) //lint:ignore maporder every child gets the same signal; delivery order is irrelevant
	}
	s.mu.Unlock()
	for _, c := range procs {
		if c.Process != nil {
			_ = c.Process.Signal(syscall.SIGTERM)
		}
	}
	s.wg.Wait()
	_ = os.RemoveAll(s.dir)
}

// awaitPortfile polls for a child's portfile, failing fast if the
// child exits first.
func awaitPortfile(path string, timeout time.Duration, cmd *exec.Cmd) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		raw, err := os.ReadFile(path)
		if err == nil && len(raw) > 0 {
			return string(raw), nil
		}
		if cmd.ProcessState != nil {
			return "", fmt.Errorf("backend exited before writing %s", path)
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("backend wrote no portfile within %s", timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
