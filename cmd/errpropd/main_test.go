package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/scidata/errprop/internal/integrity"
)

func TestParseModelFlag(t *testing.T) {
	m, err := parseModelFlag("h2=/tmp/h2.model")
	if err != nil || m.name != "h2" || m.path != "/tmp/h2.model" {
		t.Fatalf("got %+v, %v", m, err)
	}
	for _, bad := range []string{"", "h2", "=path", "h2="} {
		if _, err := parseModelFlag(bad); err == nil {
			t.Errorf("parseModelFlag(%q) accepted", bad)
		}
	}
	// Paths containing '=' keep everything after the first separator.
	m, err = parseModelFlag("m=/a/b=c.model")
	if err != nil || m.path != "/a/b=c.model" {
		t.Fatalf("got %+v, %v", m, err)
	}
}

func TestDemoNetwork(t *testing.T) {
	net, err := demoNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if net.InputDim != 9 {
		t.Fatalf("demo input dim %d, want 9", net.InputDim)
	}
	if _, err := net.Clone(); err != nil {
		t.Fatalf("demo model must be servable (clonable): %v", err)
	}
}

// TestRunCorruptModelFile: a model file whose bytes fail the container
// checksum must abort startup with an error that names the file and
// carries the typed integrity error — not serve garbage weights.
func TestRunCorruptModelFile(t *testing.T) {
	net, err := demoNetwork()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "demo.model")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20 // flip one payload bit
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	err = run([]string{"-model", "demo=" + path, "-addr", "127.0.0.1:0"})
	if err == nil {
		t.Fatal("run served a model whose file failed its checksum")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("startup error does not name the bad file: %v", err)
	}
	if !errors.Is(err, integrity.ErrCorrupt) {
		t.Fatalf("startup error is not the typed integrity error: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("run with nothing to serve must fail")
	}
	if err := run([]string{"-demo", "-format", "fp13"}); err == nil {
		t.Fatal("run with unknown format must fail")
	}
	if err := run([]string{"-model", "x=/nonexistent.model", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("run with a missing model file must fail")
	}
}
