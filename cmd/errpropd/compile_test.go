package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	errprop "github.com/scidata/errprop"
	"github.com/scidata/errprop/internal/integrity"
)

// TestCompileProducesLoadableArtifact: -compile is the blessed producer;
// its output must decode, carry the requested format, and round-trip
// into RegisterArtifact.
func TestCompileProducesLoadableArtifact(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-compile", "-demo", "-format", "int8", "-out", dir}); err != nil {
		t.Fatalf("compile: %v", err)
	}
	path := filepath.Join(dir, "demo.aot")
	art, err := errprop.ReadArtifactFile(path)
	if err != nil {
		t.Fatalf("reading compiled artifact: %v", err)
	}
	if art.Format != errprop.INT8 {
		t.Fatalf("artifact format %s, want int8", art.Format)
	}
	srv := errprop.NewServer(errprop.ServeConfig{Workers: 1})
	defer srv.Close()
	if err := srv.RegisterArtifact("demo", art); err != nil {
		t.Fatalf("RegisterArtifact: %v", err)
	}

	// Compiling an artifact again is refused, not double-wrapped.
	if err := run([]string{"-compile", "-model", "demo=" + path, "-format", "int8", "-out", dir}); err == nil {
		t.Fatal("compiling an artifact must fail")
	}
	if err := run([]string{"-compile"}); err == nil {
		t.Fatal("compile with nothing to compile must fail")
	}
}

// TestRunCorruptArtifactRefusesBoot: a damaged artifact is a typed boot
// refusal naming the file — never a silently served model.
func TestRunCorruptArtifactRefusesBoot(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-compile", "-demo", "-format", "fp16", "-out", dir}); err != nil {
		t.Fatalf("compile: %v", err)
	}
	path := filepath.Join(dir, "demo.aot")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-model", "demo=" + path, "-addr", "127.0.0.1:0"})
	if err == nil {
		t.Fatal("run served a corrupt artifact")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("boot refusal does not name the artifact file: %v", err)
	}
	if !errors.Is(err, integrity.ErrCorrupt) {
		t.Fatalf("boot refusal is not the typed integrity error: %v", err)
	}
}
