// Command score is the dataset-scale offline scorer: it streams a
// chunked, checksummed dataset (written by -write or by
// errprop.WriteScoreDataset) through a model with per-chunk certified
// error accounting, durable JSONL results, and crash-safe bit-identical
// resume.
//
// Write a synthetic demo dataset, then score it:
//
//	score -write ds -codec sz -tol 1e-3 -features 9 -samples 4096
//	score -manifest ds/MANIFEST -demo -format fp16 -budget 0.05 \
//	      -out results.jsonl -summary summary.json -cursor-dir ds/cursors
//
// A run killed at any point (try -exit-after N, which exits 7 after N
// committed chunks) resumes from its cursor directory and produces a
// byte-identical result log and summary.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
	"time"

	errprop "github.com/scidata/errprop"
	"github.com/scidata/errprop/internal/detrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("score", flag.ExitOnError)
	var (
		// Dataset writing.
		write    = fs.String("write", "", "write a synthetic dataset into this directory and exit")
		codec    = fs.String("codec", "sz", "compression codec for -write (sz|zfp|mgard)")
		tol      = fs.Float64("tol", 1e-3, "absolute L-infinity compression tolerance for -write")
		features = fs.Int("features", 9, "feature dimension for -write")
		samples  = fs.Int("samples", 4096, "sample count for -write")
		chunk    = fs.Int("chunk", 256, "samples per chunk for -write")
		seed     = fs.Uint64("seed", 42, "deterministic field seed for -write")

		// Scoring.
		manifest  = fs.String("manifest", "", "manifest file of the dataset to score")
		demo      = fs.Bool("demo", false, "score with the built-in demo model (9-feature H2-combustion MLP shape)")
		modelPath = fs.String("model", "", "score with a saved model file (nn.Save format)")
		format    = fs.String("format", "fp32", "serving weight format (fp32|tf32|bf16|fp16|int8)")
		budget    = fs.Float64("budget", 0, "per-sample QoI error budget (0 = report bounds without admission)")
		workers   = fs.Int("workers", 0, "pipeline workers (0 = GOMAXPROCS; never changes results)")
		batch     = fs.Int("batch", 256, "forward-pass batch size")
		shards    = fs.Int("engine-shards", 1, "goroutines each worker engine splits a batch across (never changes results)")

		out       = fs.String("out", "", "durable per-chunk JSONL result log")
		summary   = fs.String("summary", "", "write the deterministic aggregate summary JSON here")
		cursorDir = fs.String("cursor-dir", "", "cursor directory enabling crash-safe resume")
		ckptEvery = fs.Int("checkpoint-every", 16, "commits between cursor checkpoints")
		skip      = fs.Bool("skip-corrupt", false, "report-and-skip corrupt chunks instead of failing")
		exitAfter = fs.Int("exit-after", 0, "crash drill: exit 7 after N committed chunks")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *write != "" {
		return writeDataset(*write, *codec, *tol, *features, *samples, *chunk, *seed)
	}
	if *manifest == "" {
		return fmt.Errorf("pass -manifest to score or -write to generate a dataset")
	}

	f, err := parseFormat(*format)
	if err != nil {
		return err
	}
	net, art, err := loadModel(*demo, *modelPath)
	if err != nil {
		return err
	}

	cfg := errprop.ScoreConfig{
		Format:          f,
		QoIBudget:       *budget,
		Workers:         *workers,
		Batch:           *batch,
		EngineShards:    *shards,
		CursorDir:       *cursorDir,
		CheckpointEvery: *ckptEvery,
		SkipCorrupt:     *skip,
		// The CLI streams results to the log; keeping every chunk result
		// in memory too would defeat dataset-scale bounded memory.
		DiscardChunkResults: true,
	}
	if *out != "" {
		rl, err := errprop.OpenScoreResultLog(*out)
		if err != nil {
			return err
		}
		defer rl.Close()
		cfg.Results = rl
	}
	if *exitAfter > 0 {
		commits := 0
		n := *exitAfter
		cfg.OnChunk = func(*errprop.ScoreChunkResult) error {
			commits++
			if commits >= n {
				// Crash drill: die without any orderly shutdown, exactly
				// like a kill -9 between two checkpoints.
				os.Exit(7)
			}
			return nil
		}
	}

	start := time.Now()
	var res *errprop.ScoreResult
	if art != nil {
		// Cold-start from the compiled artifact: no quantization, no
		// compilation, no re-analysis; its baked-in format wins over -format.
		res, err = errprop.ScoreArtifactFile(art, *manifest, cfg)
	} else {
		res, err = errprop.ScoreFile(net, *manifest, cfg)
	}
	if err != nil {
		return err
	}
	wall := time.Since(start)

	if *summary != "" {
		if err := writeSummary(*summary, res); err != nil {
			return err
		}
	}
	report(os.Stderr, res, wall)
	return nil
}

// writeDataset generates a deterministic synthetic multi-physics field
// (smooth per-feature signals plus seeded low-amplitude noise, the shape
// scientific scalar fields take) and writes it as a chunked dataset.
func writeDataset(dir, codec string, tol float64, features, samples, chunk int, seed uint64) error {
	if features <= 0 || samples <= 0 {
		return fmt.Errorf("need positive -features and -samples")
	}
	rng := detrand.New(seed)
	field := make([]float64, features*samples)
	for f := 0; f < features; f++ {
		phase := rng.Float64() * 2 * math.Pi
		for c := 0; c < samples; c++ {
			x := float64(c) / float64(samples)
			field[f*samples+c] = math.Sin(2*math.Pi*x*float64(f+1)+phase)*math.Exp(-x) +
				0.01*(rng.Float64()*2-1)
		}
	}
	man, err := errprop.WriteScoreDataset(dir, field, features, errprop.ScoreDatasetConfig{
		Codec: codec, Mode: errprop.AbsLinf, Tol: tol, ChunkSamples: chunk,
	})
	if err != nil {
		return err
	}
	var stored int64
	for _, c := range man.Chunks {
		stored += c.Bytes
	}
	fmt.Fprintf(os.Stderr, "wrote %d chunks (%d samples x %d features, %s tol %g) to %s: %d -> %d bytes (%.1fx)\n",
		len(man.Chunks), samples, features, codec, tol, dir,
		int64(len(field)*8), stored, float64(len(field)*8)/float64(stored))
	return nil
}

func parseFormat(s string) (errprop.Format, error) {
	switch strings.ToLower(s) {
	case "fp32":
		return errprop.FP32, nil
	case "tf32":
		return errprop.TF32, nil
	case "bf16":
		return errprop.BF16, nil
	case "fp16":
		return errprop.FP16, nil
	case "int8":
		return errprop.INT8, nil
	default:
		return errprop.FP32, fmt.Errorf("unknown format %q", s)
	}
}

// loadModel resolves -demo/-model into either a network or, when the
// file carries the artifact magic, a fully verified compiled artifact
// (a damaged artifact is a typed refusal naming the file, never a
// silently scored model).
func loadModel(demo bool, path string) (*errprop.Network, *errprop.Artifact, error) {
	switch {
	case demo && path != "":
		return nil, nil, fmt.Errorf("pass -demo or -model, not both")
	case demo:
		net, err := errprop.MLPSpec("demo", []int{9, 50, 50, 9}, errprop.ActTanh, false).Build(1)
		return net, nil, err
	case path != "":
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		if errprop.IsArtifact(raw) {
			art, err := errprop.DecodeArtifact(raw)
			if err != nil {
				return nil, nil, fmt.Errorf("refusing to score: artifact %s: %w", path, err)
			}
			return nil, art, nil
		}
		net, err := errprop.LoadNetwork(bytes.NewReader(raw))
		return net, nil, err
	default:
		return nil, nil, fmt.Errorf("pass -demo or -model path")
	}
}

// summaryDoc is the deterministic aggregate summary: a pure function of
// the scoring result (no wall times, no timestamps), so an interrupted +
// resumed run writes byte-identical JSON to an uninterrupted one.
type summaryDoc struct {
	Chunks      int64     `json:"chunks"`
	Skipped     int64     `json:"skipped"`
	Samples     int64     `json:"samples"`
	Elems       int64     `json:"elems"`
	Mean        []float64 `json:"mean"`
	Min         []float64 `json:"min"`
	Max         []float64 `json:"max"`
	QuantBound  float64   `json:"quant_bound"`
	InputTolL2  float64   `json:"input_tol_l2,omitempty"`
	MeanBound   float64   `json:"mean_bound"`
	MaxBound    float64   `json:"max_bound"`
	OverBudget  int64     `json:"over_budget"`
	StoredBytes int64     `json:"stored_bytes"`
	RawBytes    int64     `json:"raw_bytes"`
	SimReadNS   int64     `json:"sim_read_ns"`
	SimDecodeNS int64     `json:"sim_decode_ns"`
	SimExecNS   int64     `json:"sim_exec_ns"`
	Retries     int64     `json:"retries"`
}

func writeSummary(path string, res *errprop.ScoreResult) error {
	a := res.Agg
	doc := summaryDoc{
		Chunks: a.Chunks, Skipped: a.Skipped, Samples: a.Samples, Elems: a.Elems,
		Mean: a.Mean(), Min: a.Min, Max: a.Max,
		QuantBound: res.QuantBound,
		MeanBound:  a.MeanBound(), MaxBound: a.MaxBound, OverBudget: a.OverBudget,
		StoredBytes: a.StoredBytes, RawBytes: a.RawBytes,
		SimReadNS: int64(a.SimRead), SimDecodeNS: int64(a.SimDecode), SimExecNS: int64(a.SimExec),
		Retries: a.Retries,
		// Resume provenance is intentionally NOT in the summary: the whole
		// point is that a resumed run's output is indistinguishable.
	}
	if !math.IsInf(res.InputTolL2, 1) {
		doc.InputTolL2 = res.InputTolL2
	}
	raw, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func report(w *os.File, res *errprop.ScoreResult, wall time.Duration) {
	a := res.Agg
	fmt.Fprintf(w, "scored %d chunks (%d samples, %d skipped) in %v\n", a.Chunks, a.Samples, a.Skipped, wall.Round(time.Millisecond))
	if res.Resumed {
		fmt.Fprintf(w, "resumed at chunk %d from cursor\n", res.ResumedFrom)
	}
	fmt.Fprintf(w, "certified: quant bound %.3g, mean bound %.3g, max bound %.3g, %d chunks over budget\n",
		res.QuantBound, a.MeanBound(), a.MaxBound, a.OverBudget)
	fmt.Fprintf(w, "simulated: read %v + decode %v + exec %v (%d retries), %.1fx compression\n",
		a.SimRead, a.SimDecode, a.SimExec, a.Retries, float64(a.RawBytes)/float64(a.StoredBytes))
}
