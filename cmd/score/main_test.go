package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteThenScoreEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ds := filepath.Join(dir, "ds")
	if err := run([]string{"-write", ds, "-codec", "zfp", "-tol", "1e-2", "-samples", "512", "-chunk", "64"}); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "res.jsonl")
	sumPath := filepath.Join(dir, "sum.json")
	err := run([]string{
		"-manifest", filepath.Join(ds, "MANIFEST"), "-demo", "-format", "fp16",
		"-budget", "0.5", "-workers", "3",
		"-out", outPath, "-summary", sumPath, "-cursor-dir", filepath.Join(dir, "cur"),
	})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc summaryDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Samples != 512 || doc.Chunks != 8 || doc.Skipped != 0 {
		t.Fatalf("summary counters off: %+v", doc)
	}
	if doc.QuantBound <= 0 || doc.MaxBound < doc.QuantBound || doc.OverBudget != 0 {
		t.Fatalf("summary bound accounting off: %+v", doc)
	}

	lines, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(lines), "\n"); n != 8 {
		t.Fatalf("result log has %d lines, want 8", n)
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("accepted no mode")
	}
	if err := run([]string{"-manifest", "x"}); err == nil {
		t.Fatal("accepted scoring without a model")
	}
	if err := run([]string{"-manifest", "x", "-demo", "-model", "y"}); err == nil {
		t.Fatal("accepted -demo and -model together")
	}
	if err := run([]string{"-manifest", "x", "-demo", "-format", "fp13"}); err == nil {
		t.Fatal("accepted unknown format")
	}
	if err := run([]string{"-write", t.TempDir(), "-samples", "-1"}); err == nil {
		t.Fatal("accepted negative sample count")
	}
	if err := run([]string{"-write", t.TempDir(), "-codec", "nope"}); err == nil {
		t.Fatal("accepted unknown codec")
	}
}
