package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	errprop "github.com/scidata/errprop"
)

func TestWriteThenScoreEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ds := filepath.Join(dir, "ds")
	if err := run([]string{"-write", ds, "-codec", "zfp", "-tol", "1e-2", "-samples", "512", "-chunk", "64"}); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "res.jsonl")
	sumPath := filepath.Join(dir, "sum.json")
	err := run([]string{
		"-manifest", filepath.Join(ds, "MANIFEST"), "-demo", "-format", "fp16",
		"-budget", "0.5", "-workers", "3",
		"-out", outPath, "-summary", sumPath, "-cursor-dir", filepath.Join(dir, "cur"),
	})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc summaryDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Samples != 512 || doc.Chunks != 8 || doc.Skipped != 0 {
		t.Fatalf("summary counters off: %+v", doc)
	}
	if doc.QuantBound <= 0 || doc.MaxBound < doc.QuantBound || doc.OverBudget != 0 {
		t.Fatalf("summary bound accounting off: %+v", doc)
	}

	lines, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(lines), "\n"); n != 8 {
		t.Fatalf("result log has %d lines, want 8", n)
	}
}

// TestScoreFromArtifactByteIdenticalSummary: -model pointed at a
// compiled artifact cold-starts the scorer and writes a summary and
// result log byte-identical to scoring the saved network at the
// artifact's format — even when -format disagrees (the artifact wins).
func TestScoreFromArtifactByteIdenticalSummary(t *testing.T) {
	dir := t.TempDir()
	ds := filepath.Join(dir, "ds")
	if err := run([]string{"-write", ds, "-codec", "sz", "-tol", "1e-2", "-samples", "256", "-chunk", "64"}); err != nil {
		t.Fatal(err)
	}
	net, err := errprop.MLPSpec("demo", []int{9, 50, 50, 9}, errprop.ActTanh, false).Build(1)
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "demo.model")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Save(mf); err != nil {
		t.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}
	art, err := errprop.BuildArtifact(net, errprop.INT8)
	if err != nil {
		t.Fatal(err)
	}
	aotPath := filepath.Join(dir, "demo.aot")
	if err := errprop.WriteArtifactFile(aotPath, art); err != nil {
		t.Fatal(err)
	}

	score := func(model, format, tag string) ([]byte, []byte) {
		outPath := filepath.Join(dir, tag+".jsonl")
		sumPath := filepath.Join(dir, tag+".json")
		err := run([]string{
			"-manifest", filepath.Join(ds, "MANIFEST"), "-model", model, "-format", format,
			"-budget", "0.5", "-workers", "2", "-out", outPath, "-summary", sumPath,
		})
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		sum, err := os.ReadFile(sumPath)
		if err != nil {
			t.Fatal(err)
		}
		lines, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		return sum, lines
	}
	refSum, refLines := score(modelPath, "int8", "spec")
	gotSum, gotLines := score(aotPath, "fp16", "artifact") // -format contradicts; artifact's int8 wins
	if string(gotSum) != string(refSum) {
		t.Fatalf("artifact summary not byte-identical:\n got %s\n ref %s", gotSum, refSum)
	}
	if string(gotLines) != string(refLines) {
		t.Fatal("artifact result log not byte-identical to spec path")
	}

	// A corrupt artifact is a typed refusal naming the file.
	raw, err := os.ReadFile(aotPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(aotPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-manifest", filepath.Join(ds, "MANIFEST"), "-model", aotPath})
	if err == nil {
		t.Fatal("scored a corrupt artifact")
	}
	if !strings.Contains(err.Error(), aotPath) {
		t.Fatalf("refusal does not name the artifact: %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("accepted no mode")
	}
	if err := run([]string{"-manifest", "x"}); err == nil {
		t.Fatal("accepted scoring without a model")
	}
	if err := run([]string{"-manifest", "x", "-demo", "-model", "y"}); err == nil {
		t.Fatal("accepted -demo and -model together")
	}
	if err := run([]string{"-manifest", "x", "-demo", "-format", "fp13"}); err == nil {
		t.Fatal("accepted unknown format")
	}
	if err := run([]string{"-write", t.TempDir(), "-samples", "-1"}); err == nil {
		t.Fatal("accepted negative sample count")
	}
	if err := run([]string{"-write", t.TempDir(), "-codec", "nope"}); err == nil {
		t.Fatal("accepted unknown codec")
	}
}
