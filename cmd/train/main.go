// Command train fits the three task models (H2 combustion, Borghesi
// flame, EuroSAT) with their paper-faithful recipes — including the PSN,
// plain, and weight-decay variants used by Figs. 3-4 — and caches them in
// a model directory so later errprop runs skip training.
//
// Usage:
//
//	train [-dir models] [-variants psn,plain,wd]
//	train -checkpoint-dir ckpts -checkpoint-every 100 -resume
//
// With -checkpoint-dir set, every model checkpoints its full trainer
// state (weights, optimizer moments, PSN state, step counter) to
// <checkpoint-dir>/<model>/ every -checkpoint-every optimizer steps,
// written atomically so a kill mid-write never leaves a half checkpoint.
// Restarting with -resume continues each interrupted model from its
// newest intact checkpoint and produces the bit-identical weights an
// uninterrupted run would have.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/scidata/errprop/internal/experiments"
)

func main() {
	dir := flag.String("dir", "models", "directory to store trained models")
	variants := flag.String("variants", "psn,plain,wd", "comma-separated training variants")
	ckptDir := flag.String("checkpoint-dir", "", "directory for crash-safe training checkpoints (empty disables)")
	ckptEvery := flag.Int64("checkpoint-every", 200, "checkpoint every N optimizer steps")
	resume := flag.Bool("resume", false, "resume interrupted training from the newest intact checkpoint")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
	// The registry trains on first use and persists through this env var;
	// the checkpoint settings travel the same way.
	os.Setenv("ERRPROP_MODEL_DIR", *dir)
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "train:", err)
			os.Exit(1)
		}
		os.Setenv("ERRPROP_CHECKPOINT_DIR", *ckptDir)
		os.Setenv("ERRPROP_CHECKPOINT_EVERY", fmt.Sprint(*ckptEvery))
	}
	if *resume {
		os.Setenv("ERRPROP_RESUME", "1")
	}

	var vs []experiments.Variant
	for _, name := range strings.Split(*variants, ",") {
		switch strings.TrimSpace(name) {
		case "psn":
			vs = append(vs, experiments.PSN)
		case "plain":
			vs = append(vs, experiments.Plain)
		case "wd":
			vs = append(vs, experiments.WeightDecay)
		case "":
		default:
			fmt.Fprintf(os.Stderr, "train: unknown variant %q (want psn, plain, wd)\n", name)
			os.Exit(2)
		}
	}

	for _, v := range vs {
		start := time.Now()
		h2 := experiments.H2(v)
		fmt.Printf("h2comb/%-5s  trained in %6.1fs  test MSE %.5f\n", v, time.Since(start).Seconds(), h2.TestMSE())

		start = time.Now()
		bf := experiments.Borghesi(v)
		fmt.Printf("borghesi/%-5s trained in %6.1fs  test MSE %.5f\n", v, time.Since(start).Seconds(), bf.TestMSE())

		start = time.Now()
		es := experiments.EuroSAT(v)
		fmt.Printf("eurosat/%-5s  trained in %6.1fs  test acc %.2f\n", v, time.Since(start).Seconds(), es.TestAccuracy())
	}
	fmt.Println("models cached in", *dir, "— export ERRPROP_MODEL_DIR to reuse them")
}
