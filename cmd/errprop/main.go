// Command errprop is the front door to the error-propagation framework:
// it reruns the paper's experiments, analyzes saved models, and runs the
// tolerance planner.
//
// Usage:
//
//	errprop run <experiment|all>     rerun a table/figure (see `errprop list`)
//	errprop list                     list experiment ids
//	errprop bound -model m.model -einf 1e-5 -format fp16
//	errprop plan  -model m.model -tol 1e-3 -norm linf -alloc 0.5
//
// Set ERRPROP_MODEL_DIR to cache trained task models between runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"encoding/binary"
	"math"

	"github.com/scidata/errprop/internal/autotune"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/experiments"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = runCmd(os.Args[2:])
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
	case "bound":
		err = boundCmd(os.Args[2:])
	case "plan":
		err = planCmd(os.Args[2:])
	case "autotune":
		err = autotuneCmd(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "errprop:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `errprop — error propagation analysis for reduced-precision scientific inference

commands:
  run <id|all>   rerun one of the paper's experiments (errprop list)
  list           list experiment ids
  bound          predict QoI error bounds for a saved model
  plan           split a QoI tolerance between compression and quantization
  autotune       search allocations for the fastest configuration on a data file

environment:
  ERRPROP_MODEL_DIR   cache directory for the trained task models
`)
}

func runCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: errprop run <experiment|all>")
	}
	ids := []string{args[0]}
	if args[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		res, err := experiments.Run(id)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	return nil
}

func loadModel(path string) (*nn.Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return nn.Load(f)
}

func boundCmd(args []string) error {
	fs := flag.NewFlagSet("bound", flag.ContinueOnError)
	model := fs.String("model", "", "path to a saved model (nn.Save format)")
	einf := fs.Float64("einf", 1e-5, "pointwise (L-infinity) input error bound")
	format := fs.String("format", "fp32", "weight quantization format (fp32|tf32|fp16|bf16|int8)")
	verbose := fs.Bool("v", false, "print the per-layer error-budget breakdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" {
		return fmt.Errorf("bound: -model is required")
	}
	net, err := loadModel(*model)
	if err != nil {
		return err
	}
	f, err := numfmt.ParseFormat(*format)
	if err != nil {
		return err
	}
	an, err := core.AnalyzeNetwork(net, f)
	if err != nil {
		return err
	}
	fmt.Printf("model: %s (input dim %d)\n", *model, an.InputDim())
	fmt.Printf("lipschitz (orig weights):      %.6g\n", an.Lipschitz())
	fmt.Printf("lipschitz (quantized, infl.):  %.6g\n", an.LipschitzQuantized())
	fmt.Printf("compression bound  |dx|inf=%.3g: %.6g\n", *einf, an.CompressionBoundLinf(*einf))
	fmt.Printf("quantization bound (%s):       %.6g\n", f, an.QuantizationBound())
	fmt.Printf("combined bound (Linf):          %.6g\n", an.BoundLinf(*einf))
	if pf, err := an.PerFeatureBoundsLinf(*einf); err == nil {
		fmt.Println("per-feature bounds:")
		for k, b := range pf {
			fmt.Printf("  feature %2d: %.6g\n", k, b)
		}
	}
	if *verbose {
		fmt.Println("\nper-layer breakdown:")
		fmt.Print(an.FormatReport())
	}
	return nil
}

func planCmd(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	model := fs.String("model", "", "path to a saved model")
	tol := fs.Float64("tol", 1e-3, "total QoI tolerance (absolute)")
	norm := fs.String("norm", "linf", "tolerance norm: linf or l2")
	alloc := fs.Float64("alloc", 0.5, "fraction of tolerance offered to quantization")
	conservative := fs.Bool("conservative", false, "propagate compression budget through quantized sigmas")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" {
		return fmt.Errorf("plan: -model is required")
	}
	net, err := loadModel(*model)
	if err != nil {
		return err
	}
	n := core.NormLinf
	if *norm == "l2" {
		n = core.NormL2
	} else if *norm != "linf" {
		return fmt.Errorf("plan: unknown norm %q", *norm)
	}
	plan, err := core.PlanNetwork(net, core.PlanRequest{
		Tol: *tol, Norm: n, QuantFraction: *alloc, Conservative: *conservative})
	if err != nil {
		return err
	}
	fmt.Printf("format:            %s\n", plan.Format)
	fmt.Printf("quant bound:       %.6g\n", plan.QuantBound)
	fmt.Printf("compress budget:   %.6g\n", plan.CompressBudget)
	fmt.Printf("input tol (L2):    %.6g\n", plan.InputTolL2)
	fmt.Printf("input tol (Linf):  %.6g\n", plan.InputTolLinf)
	fmt.Printf("predicted bound:   %.6g (<= tol %.6g)\n", plan.TotalBound, *tol)
	return nil
}

func autotuneCmd(args []string) error {
	fs := flag.NewFlagSet("autotune", flag.ContinueOnError)
	model := fs.String("model", "", "path to a saved model")
	dataPath := fs.String("data", "", "path to a raw little-endian float64 field file")
	dimsS := fs.String("dims", "", "field dims, e.g. 9x384x384 (first dim = features)")
	tol := fs.Float64("tol", 1e-3, "total QoI tolerance (absolute, Linf)")
	codec := fs.String("codec", "sz", "compression backend")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" || *dataPath == "" || *dimsS == "" {
		return fmt.Errorf("autotune: -model, -data and -dims are required")
	}
	net, err := loadModel(*model)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(*dataPath)
	if err != nil {
		return err
	}
	if len(raw)%8 != 0 {
		return fmt.Errorf("autotune: %s is not a float64 file", *dataPath)
	}
	field := make([]float64, len(raw)/8)
	for i := range field {
		field[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	var dims []int
	for _, p := range splitDims(*dimsS) {
		dims = append(dims, p)
	}
	res, err := autotune.Optimize(net, field, dims, autotune.Options{
		Tol: *tol, Norm: core.NormLinf, Codec: *codec})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-7s %-10s %-12s %-12s %-12s\n",
		"alloc", "format", "est ratio", "IO GB/s", "exec GB/s", "total GB/s")
	for _, c := range res.Candidates {
		marker := " "
		//lint:ignore floatcompare Fraction is copied verbatim from the sweep grid; identity check, not arithmetic
		if c.Fraction == res.Best.Fraction {
			marker = "*"
		}
		fmt.Printf("%-7.2f%s %-7s %-10.1f %-12.2f %-12.2f %-12.2f\n",
			c.Fraction, marker, c.Plan.Format, c.EstRatio,
			c.PredIO/1e9, c.PredExec/1e9, c.PredTotal/1e9)
	}
	fmt.Printf("\nbest: allocation %.2f, format %s, input tol (Linf) %.3g\n",
		res.Best.Fraction, res.Best.Plan.Format, res.Best.Plan.InputTolLinf)
	return nil
}

// splitDims parses "9x384x384" into ints; invalid segments are skipped
// by strconv failing upstream (Optimize validates dims against data).
func splitDims(s string) []int {
	var out []int
	cur := 0
	has := false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			cur = cur*10 + int(r-'0')
			has = true
		} else {
			if has {
				out = append(out, cur)
			}
			cur, has = 0, false
		}
	}
	if has {
		out = append(out, cur)
	}
	return out
}
