package main

import "testing"

func TestSplitDims(t *testing.T) {
	cases := map[string][]int{
		"9x384x384": {9, 384, 384},
		"100":       {100},
		"2x3":       {2, 3},
	}
	for in, want := range cases {
		got := splitDims(in)
		if len(got) != len(want) {
			t.Fatalf("splitDims(%q) = %v", in, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("splitDims(%q) = %v, want %v", in, got, want)
			}
		}
	}
	if len(splitDims("")) != 0 {
		t.Fatal("empty dims should parse to nothing")
	}
}
