// Command sdrcompress is a file-level front end to the three
// error-bounded scientific codecs (sz, zfp, mgard). Input files hold raw
// little-endian float64 values; compressed files use the library's
// self-describing container, so decompression needs no flags.
//
// Usage:
//
//	sdrcompress c -codec sz -mode abs-linf -tol 1e-4 -dims 512x512 in.f64 out.sdrc
//	sdrcompress d in.sdrc out.f64
//	sdrcompress info in.sdrc
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"github.com/scidata/errprop/internal/compress"
	_ "github.com/scidata/errprop/internal/compress/mgard"
	_ "github.com/scidata/errprop/internal/compress/sz"
	_ "github.com/scidata/errprop/internal/compress/zfp"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "c":
		err = compressCmd(os.Args[2:])
	case "d":
		err = decompressCmd(os.Args[2:])
	case "info":
		err = infoCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdrcompress:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `sdrcompress — error-bounded lossy compression for float64 scientific data

  sdrcompress c -codec <sz|zfp|mgard> -mode <abs-linf|rel-linf|l2|rel-l2> -tol <v> -dims NxM in.f64 out.sdrc
  sdrcompress d in.sdrc out.f64
  sdrcompress info in.sdrc
`)
}

func parseMode(s string) (compress.Mode, error) {
	for _, m := range []compress.Mode{compress.AbsLinf, compress.RelLinf, compress.L2, compress.RelL2} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		d, err := strconv.Atoi(p)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad dims %q", s)
		}
		dims = append(dims, d)
	}
	return dims, nil
}

func readF64(path string) ([]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("%s: size %d is not a multiple of 8", path, len(raw))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out, nil
}

func writeF64(path string, data []float64) error {
	raw := make([]byte, len(data)*8)
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	return os.WriteFile(path, raw, 0o644)
}

func compressCmd(args []string) error {
	fs := flag.NewFlagSet("c", flag.ContinueOnError)
	codec := fs.String("codec", "sz", "codec: sz, zfp, mgard")
	modeS := fs.String("mode", "abs-linf", "error mode")
	tol := fs.Float64("tol", 1e-4, "error tolerance")
	dimsS := fs.String("dims", "", "grid dims, e.g. 512x512 (default: flat 1-D)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: sdrcompress c [flags] in.f64 out.sdrc")
	}
	data, err := readF64(fs.Arg(0))
	if err != nil {
		return err
	}
	dims := []int{len(data)}
	if *dimsS != "" {
		if dims, err = parseDims(*dimsS); err != nil {
			return err
		}
	}
	mode, err := parseMode(*modeS)
	if err != nil {
		return err
	}
	blob, err := compress.Encode(*codec, data, dims, mode, *tol)
	if err != nil {
		return err
	}
	if err := os.WriteFile(fs.Arg(1), blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d -> %d bytes (ratio %.2f)\n", *codec, len(data)*8, len(blob),
		compress.Ratio(len(data), blob))
	return nil
}

func decompressCmd(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: sdrcompress d in.sdrc out.f64")
	}
	blob, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	data, meta, err := compress.Decode(blob)
	if err != nil {
		return err
	}
	if err := writeF64(args[1], data); err != nil {
		return err
	}
	fmt.Printf("%s: %d values, dims %v, %s tol %g\n", meta.CodecName, len(data), meta.Dims, meta.Mode, meta.Tol)
	return nil
}

func infoCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: sdrcompress info in.sdrc")
	}
	blob, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	data, meta, err := compress.Decode(blob)
	if err != nil {
		return err
	}
	fmt.Printf("codec:  %s\nmode:   %s\ntol:    %g\ndims:   %v\nvalues: %d\nratio:  %.2f\n",
		meta.CodecName, meta.Mode, meta.Tol, meta.Dims, len(data), compress.Ratio(len(data), blob))
	return nil
}
