package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/scidata/errprop/internal/compress"
)

func TestParseMode(t *testing.T) {
	for _, s := range []string{"abs-linf", "rel-linf", "l2", "rel-l2"} {
		if _, err := parseMode(s); err != nil {
			t.Fatalf("parseMode(%q): %v", s, err)
		}
	}
	if _, err := parseMode("linf"); err == nil {
		t.Fatal("unknown mode should error")
	}
}

func TestParseDims(t *testing.T) {
	d, err := parseDims("512x512")
	if err != nil || len(d) != 2 || d[0] != 512 {
		t.Fatalf("parseDims: %v, %v", d, err)
	}
	if _, err := parseDims("0x4"); err == nil {
		t.Fatal("zero dim should error")
	}
	if _, err := parseDims("axb"); err == nil {
		t.Fatal("garbage dims should error")
	}
}

func TestF64FileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.f64")
	data := []float64{1.5, -2.25, 0, 1e-300}
	if err := writeF64(path, data); err != nil {
		t.Fatal(err)
	}
	got, err := readF64(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
	// Truncated file must error.
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readF64(path); err == nil {
		t.Fatal("non-multiple-of-8 file should error")
	}
}

func TestCompressDecompressCommands(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	out := filepath.Join(dir, "out.sdrc")
	back := filepath.Join(dir, "back.f64")
	data := make([]float64, 1024)
	for i := range data {
		data[i] = float64(i%37) / 37
	}
	if err := writeF64(in, data); err != nil {
		t.Fatal(err)
	}
	if err := compressCmd([]string{"-codec", "sz", "-tol", "1e-6", in, out}); err != nil {
		t.Fatal(err)
	}
	if err := decompressCmd([]string{out, back}); err != nil {
		t.Fatal(err)
	}
	recon, err := readF64(back)
	if err != nil {
		t.Fatal(err)
	}
	linf, _ := compress.MeasureError(data, recon)
	if linf > 1e-6 {
		t.Fatalf("file-level roundtrip error %v", linf)
	}
	if err := infoCmd([]string{out}); err != nil {
		t.Fatal(err)
	}
	// Error paths.
	if err := compressCmd([]string{in}); err == nil {
		t.Fatal("missing output arg should error")
	}
	if err := decompressCmd([]string{in, back}); err == nil {
		t.Fatal("decompressing raw data should error")
	}
}
