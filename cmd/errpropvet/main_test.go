package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/scidata/errprop/internal/analyze"
)

// dirtyFixture returns the absolute path of a fixture package that
// carries known findings, used to drive the driver end to end.
func dirtyFixture(t *testing.T) string {
	t.Helper()
	l, err := analyze.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(l.ModuleDir, "internal", "analyze", "testdata", "src", "maporder_dirty")
}

func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestBaselineGate walks the CI gate's life cycle: a dirty tree fails,
// recording a baseline makes it pass, and a baseline that does not cover
// the findings fails again — the "new finding" case.
func TestBaselineGate(t *testing.T) {
	fixture := dirtyFixture(t)
	baseline := filepath.Join(t.TempDir(), "baseline.json")

	// Without a baseline the dirty fixture fails outright.
	code, stdout, _ := runVet(t, fixture)
	if code != 1 {
		t.Fatalf("dirty fixture: exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "maporder") {
		t.Fatalf("dirty fixture produced no maporder findings:\n%s", stdout)
	}

	// -update-baseline records the current findings and exits 0.
	code, _, stderr := runVet(t, "-baseline", baseline, "-update-baseline", fixture)
	if code != 0 {
		t.Fatalf("-update-baseline: exit %d\n%s", code, stderr)
	}
	if _, err := os.Stat(baseline); err != nil {
		t.Fatalf("baseline file not written: %v", err)
	}

	// With the recorded baseline the same tree passes.
	code, stdout, stderr = runVet(t, "-baseline", baseline, fixture)
	if code != 0 {
		t.Fatalf("baselined run: exit %d, want 0\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "tolerated") {
		t.Fatalf("baselined run did not report tolerated findings:\n%s", stderr)
	}

	// An empty baseline covers nothing: every finding is "new" and the
	// gate fails — this is what a regression looks like in CI.
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := analyze.WriteBaseline(empty, &analyze.Baseline{}); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runVet(t, "-baseline", empty, fixture)
	if code != 1 {
		t.Fatalf("empty baseline: exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "maporder") {
		t.Fatalf("empty-baseline run hid the findings:\n%s", stdout)
	}
}

func TestUpdateBaselineRequiresBaseline(t *testing.T) {
	code, _, stderr := runVet(t, "-update-baseline", dirtyFixture(t))
	if code != 2 {
		t.Fatalf("-update-baseline without -baseline: exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "-baseline") {
		t.Fatalf("unhelpful error: %s", stderr)
	}
}

func TestListAndOnly(t *testing.T) {
	code, stdout, _ := runVet(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, name := range []string{"maporder", "walltime", "gororder", "boundflow", "ignorestale"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list missing %s:\n%s", name, stdout)
		}
	}

	// -only with a filtered suite: the maporder fixture stays dirty under
	// -only maporder but is clean under -only floatcompare.
	fixture := dirtyFixture(t)
	if code, _, _ := runVet(t, "-only", "maporder", fixture); code != 1 {
		t.Errorf("-only maporder on dirty fixture: exit %d, want 1", code)
	}
	if code, stdout, _ := runVet(t, "-only", "floatcompare", fixture); code != 0 {
		t.Errorf("-only floatcompare on maporder fixture: exit %d, want 0\n%s", code, stdout)
	}
}
