// Command errpropvet runs the repo's numeric-soundness and determinism
// analyzers (internal/analyze) over module packages:
//
//	go run ./cmd/errpropvet ./...
//	go run ./cmd/errpropvet -json -only floatcompare,droppederr ./internal/core
//	go run ./cmd/errpropvet -baseline errpropvet.baseline.json ./...
//
// It exits 0 when the tree is clean, 1 when findings were reported and
// 2 on driver errors. Findings are suppressed per line with
// //lint:ignore <analyzer> <reason>; see README "Static analysis".
//
// With -baseline, previously recorded findings are tolerated and only
// NEW findings fail the run — the CI gate mode. -update-baseline
// rewrites the baseline file from the current findings instead.
//
// The interprocedural analyzers (walltime, boundflow) propagate facts
// seeded by //errprop:deterministic and //errprop:bound-source
// annotations across every package loaded in one invocation; run over
// ./... (as CI does) so cross-package call chains are visible.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/scidata/errprop/internal/analyze"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("errpropvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	pkgFilter := fs.String("pkg", "", "only analyze packages whose import path contains this substring")
	list := fs.Bool("list", false, "list analyzers and exit")
	baseline := fs.String("baseline", "", "baseline file: tolerate recorded findings, fail only on new ones")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the -baseline file from current findings and exit 0")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: errpropvet [flags] <package patterns>\n\n")
		fmt.Fprintf(stderr, "Runs the errprop static-analysis suite (see README \"Static analysis\").\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analyze.All()
	if *only != "" {
		var err error
		analyzers, err = analyze.ByName(*only)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *updateBaseline && *baseline == "" {
		fmt.Fprintln(stderr, "errpropvet: -update-baseline requires -baseline <file>")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	loader, err := analyze.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	targets, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	// Load every selected package first: the interprocedural fact store
	// and call graph span the whole loaded set.
	var pkgs []*analyze.Package
	for _, t := range targets {
		if *pkgFilter != "" && !strings.Contains(t.Path, *pkgFilter) {
			continue
		}
		pkg, err := loader.Load(t)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	prog := analyze.NewProgram(pkgs)
	var findings []analyze.Finding
	findings = append(findings, prog.BadAnnotations...)
	for _, pkg := range pkgs {
		findings = append(findings, analyze.CheckDirectives(pkg)...)
	}
	findings = append(findings, analyze.RunProgram(prog, analyzers)...)

	if *baseline != "" {
		if *updateBaseline {
			b := analyze.NewBaseline(findings, loader.ModuleDir)
			if err := analyze.WriteBaseline(*baseline, b); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			fmt.Fprintf(stderr, "errpropvet: baseline %s updated (%d entries)\n", *baseline, len(b.Entries))
			return 0
		}
		b, err := analyze.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		total := len(findings)
		findings = analyze.FilterBaseline(findings, b, loader.ModuleDir)
		if n := total - len(findings); n > 0 {
			fmt.Fprintf(stderr, "errpropvet: %d baselined finding(s) tolerated\n", n)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analyze.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "errpropvet: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
