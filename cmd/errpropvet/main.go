// Command errpropvet runs the repo's numeric-soundness and determinism
// analyzers (internal/analyze) over module packages:
//
//	go run ./cmd/errpropvet ./...
//	go run ./cmd/errpropvet -json -only floatcompare,droppederr ./internal/core
//
// It exits 0 when the tree is clean, 1 when findings were reported and
// 2 on driver errors. Findings are suppressed per line with
// //lint:ignore <analyzer> <reason>; see README "Static analysis".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/scidata/errprop/internal/analyze"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("errpropvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	pkgFilter := fs.String("pkg", "", "only analyze packages whose import path contains this substring")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: errpropvet [flags] <package patterns>\n\n")
		fmt.Fprintf(stderr, "Runs the errprop static-analysis suite (see README \"Static analysis\").\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analyze.All()
	if *only != "" {
		var err error
		analyzers, err = analyze.ByName(*only)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	loader, err := analyze.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	targets, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var findings []analyze.Finding
	for _, t := range targets {
		if *pkgFilter != "" && !strings.Contains(t.Path, *pkgFilter) {
			continue
		}
		pkg, err := loader.Load(t)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		findings = append(findings, analyze.CheckDirectives(pkg)...)
		findings = append(findings, analyze.Run(pkg, analyzers)...)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analyze.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "errpropvet: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
