package errprop_test

import (
	"fmt"
	"math/rand"
	"testing"

	errprop "github.com/scidata/errprop"
)

// goldenArtifactSpecs mirrors the engine layer's golden inventory: the
// seven architectures the exactness discipline is certified over.
func goldenArtifactSpecs() []*errprop.Spec {
	return []*errprop.Spec{
		errprop.MLPSpec("mlp-psn", []int{9, 16, 12, 9}, errprop.ActTanh, true),
		errprop.MLPSpec("mlp-gelu", []int{9, 16, 9}, errprop.ActGELU, false),
		errprop.MLPSpec("mlp-sig", []int{6, 10, 4}, errprop.ActSigmoid, false),
		errprop.ResNetSpec("resnet", 1, 8, 8, 4, []int{1, 1}, []int{4, 8}, errprop.ActReLU, true),
		{
			Name: "bn-pool-round", InputDim: 2 * 6 * 6,
			Layers: []errprop.LayerSpec{
				{Type: "conv", Name: "c1", C: 2, H: 6, W: 6, OutC: 4, K: 3, Stride: 1, Pad: 1},
				{Type: "bn", Name: "bn1", C: 4, H: 6, W: 6},
				{Type: "act", Act: errprop.ActReLU},
				{Type: "maxpool", Name: "mp1", C: 4, H: 6, W: 6, K: 2},
				{Type: "round", Name: "r1", Fmt: "fp16"},
				{Type: "dense", Name: "fc", In: 4 * 3 * 3, Out: 5},
			},
		},
		{
			Name: "attn", InputDim: 4 * 3,
			Layers: []errprop.LayerSpec{
				{Type: "attention", Name: "sa", In: 4, Out: 3},
				{Type: "act", Act: errprop.ActTanh},
				{Type: "dense", Name: "head", In: 12, Out: 6},
			},
		},
		errprop.UNetSpec("unet", 2, 8, 8, 3, 4, errprop.ActReLU, true),
	}
}

// TestArtifactEngineBitIdenticalToSpecPath is the acceptance oracle for
// ahead-of-time artifacts: for every golden architecture, format, and
// shard count, an engine cold-started from a decoded artifact — shipped
// program bound to shipped build-time-quantized weights — must
// reproduce the quantize-then-compile-from-spec engine's forward pass
// to the last bit. The artifact round-trips through its wire encoding
// first, so the property holds for the bytes a deployment actually
// loads, and the certified bound it carries must bit-equal the live
// analysis of the original network.
func TestArtifactEngineBitIdenticalToSpecPath(t *testing.T) {
	const maxBatch = 8
	formats := []errprop.Format{errprop.FP32, errprop.TF32, errprop.FP16, errprop.BF16, errprop.INT8}
	for _, spec := range goldenArtifactSpecs() {
		net, err := spec.Build(31)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range formats {
			art, err := errprop.BuildArtifact(net, f)
			if err != nil {
				t.Fatalf("%s/%s: BuildArtifact: %v", spec.Name, f, err)
			}
			raw, err := art.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !errprop.IsArtifact(raw) {
				t.Fatalf("%s/%s: encoded artifact fails magic sniff", spec.Name, f)
			}
			dec, err := errprop.DecodeArtifact(raw)
			if err != nil {
				t.Fatalf("%s/%s: DecodeArtifact: %v", spec.Name, f, err)
			}

			an, err := errprop.Analyze(net, f)
			if err != nil {
				t.Fatal(err)
			}
			if dec.QuantBound != an.QuantizationBound() {
				t.Fatalf("%s/%s: artifact bound %x != live analysis %x",
					spec.Name, f, dec.QuantBound, an.QuantizationBound())
			}

			serving := net
			if f != errprop.FP32 {
				if serving, err = errprop.Quantize(net, f); err != nil {
					t.Fatal(err)
				}
			}
			for _, shards := range []int{1, 2} {
				t.Run(fmt.Sprintf("%s/%s/shards=%d", spec.Name, f, shards), func(t *testing.T) {
					ref, err := errprop.CompileInferenceSharded(serving, maxBatch, shards)
					if err != nil {
						t.Fatal(err)
					}
					eng, err := dec.Program.Bind(dec.Net, maxBatch, shards)
					if err != nil {
						t.Fatalf("binding decoded artifact: %v", err)
					}
					rng := rand.New(rand.NewSource(32))
					for _, batch := range []int{1, maxBatch} {
						x := randBatch(rng, net.InputDim, batch)
						want := ref.Forward(x)
						got := eng.Forward(x)
						if got.Rows != want.Rows || got.Cols != want.Cols {
							t.Fatalf("batch %d: shape (%d,%d) != (%d,%d)",
								batch, got.Rows, got.Cols, want.Rows, want.Cols)
						}
						if !bitEqual(got.Data, want.Data) {
							t.Fatalf("batch %d: artifact engine not bit-identical to spec-path engine", batch)
						}
					}
				})
			}
		}
	}
}
