package errprop_test

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	errprop "github.com/scidata/errprop"
)

// TestFacadeServer exercises the serving subsystem purely through the
// public facade: build a network, construct a server, register, predict
// over HTTP, and read the metrics plane — the exact surface cmd/errpropd
// and external callers use.
func TestFacadeServer(t *testing.T) {
	net, err := errprop.MLPSpec("h2", []int{9, 50, 50, 9}, errprop.ActTanh, false).Build(5)
	if err != nil {
		t.Fatal(err)
	}
	srv := errprop.NewServer(errprop.ServeConfig{Workers: 2})
	defer srv.Close()
	if err := srv.Register("h2", net, errprop.FP16); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	row := make([]float64, 9)
	for i := range row {
		row[i] = 0.1 * float64(i)
	}
	body, err := json.Marshal(map[string]any{"model": "h2", "inputs": [][]float64{row}, "tolerance": 1e6})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var pr struct {
		Outputs [][]float64 `json:"outputs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	// The served function is the quantized copy's function.
	qnet, err := errprop.Quantize(net, errprop.FP16)
	if err != nil {
		t.Fatal(err)
	}
	want := qnet.ForwardVec(row)
	for i := range want {
		if math.Abs(pr.Outputs[0][i]-want[i]) > 1e-12 {
			t.Fatalf("output[%d] = %v, want %v", i, pr.Outputs[0][i], want[i])
		}
	}

	m := srv.Metrics()
	if m.Requests != 1 || m.OK != 1 || m.Samples != 1 {
		t.Fatalf("metrics after one request: %+v", m)
	}
}

// TestDecompressDimsErrorPaths covers the untrusted-blob failure modes:
// truncations anywhere in the container and a corrupted magic must
// surface as errors, never as silently wrong data or a panic.
func TestDecompressDimsErrorPaths(t *testing.T) {
	data := make([]float64, 4*32)
	for i := range data {
		data[i] = math.Sin(float64(i) / 5)
	}
	blob, err := errprop.Compress("sz", data, []int{4, 32}, errprop.AbsLinf, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if _, dims, err := errprop.DecompressDims(blob); err != nil || len(dims) != 2 || dims[0] != 4 || dims[1] != 32 {
		t.Fatalf("round trip failed: dims=%v err=%v", dims, err)
	}

	// Truncations: cut inside the magic, the header, and the payload.
	for _, k := range []int{0, 1, 3, 8, len(blob) / 2, len(blob) - 1} {
		if k >= len(blob) {
			continue
		}
		if _, _, err := errprop.DecompressDims(blob[:k]); err == nil {
			t.Errorf("truncated blob (%d of %d bytes) decoded without error", k, len(blob))
		}
	}

	// A corrupt header (wrong magic) must be rejected up front.
	corrupt := append([]byte(nil), blob...)
	corrupt[0] ^= 0xFF
	if _, _, err := errprop.DecompressDims(corrupt); err == nil {
		t.Error("blob with corrupted magic decoded without error")
	}
}
