// Package errprop is the public facade of the error-propagation
// framework from "Understanding and Estimating Error Propagation in
// Neural Networks for Scientific Data Analysis" (ICDE 2025): build or
// load a network, analyze how compression and quantization errors flow
// through it, plan a reduction configuration for a QoI tolerance, and run
// the resulting error-bounded inference pipeline.
//
// A minimal session:
//
//	spec := errprop.MLPSpec("demo", []int{9, 50, 50, 9}, errprop.ActTanh, true)
//	net, _ := spec.Build(1)
//	// ... train net (see examples/quickstart) ...
//	an, _ := errprop.Analyze(net, errprop.FP16)
//	fmt.Println(an.BoundLinf(1e-5)) // predicted QoI error bound
//
//	plan, _ := errprop.Plan(net, errprop.PlanRequest{
//	    Tol: 1e-3, Norm: errprop.NormLinf, QuantFraction: 0.5})
//	pipe, _ := errprop.NewPipeline(net, plan, "sz", errprop.NormLinf)
//
// The heavy lifting lives in the internal packages; this package
// re-exports the types a downstream user needs so the import surface
// stays a single path.
package errprop

import (
	"io"

	"github.com/scidata/errprop/internal/artifact"
	"github.com/scidata/errprop/internal/autotune"
	"github.com/scidata/errprop/internal/checkpoint"
	"github.com/scidata/errprop/internal/compress"
	_ "github.com/scidata/errprop/internal/compress/mgard" // register codecs
	_ "github.com/scidata/errprop/internal/compress/sz"
	_ "github.com/scidata/errprop/internal/compress/zfp"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/gateway"
	"github.com/scidata/errprop/internal/gpusim"
	"github.com/scidata/errprop/internal/integrity"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/pipeline"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/score"
	"github.com/scidata/errprop/internal/serve"
	"github.com/scidata/errprop/internal/tensor"
)

// Network is a neural network (see internal/nn for the full API surface
// on the type itself: Forward, Save, Params, ...).
type Network = nn.Network

// Spec describes a network architecture and builds Networks. Use
// Spec.Validate to statically check layer-geometry chaining (with
// position-annotated errors) before paying for Build; Build and
// LoadNetwork run the same validation themselves.
type Spec = nn.Spec

// LayerSpec is one layer of a Spec.
type LayerSpec = nn.LayerSpec

// Activation kind names accepted by MLPSpec / LayerSpec.
const (
	ActIdentity = nn.ActIdentity
	ActTanh     = nn.ActTanh
	ActReLU     = nn.ActReLU
	ActLeaky    = nn.ActLeaky
	ActPReLU    = nn.ActPReLU
	ActGELU     = nn.ActGELU
	ActSigmoid  = nn.ActSigmoid
)

// MLPSpec builds a multilayer-perceptron architecture; psn enables the
// paper's parameterized spectral normalization on every dense layer.
func MLPSpec(name string, dims []int, act string, psn bool) *Spec {
	return nn.MLPSpec(name, dims, act, psn)
}

// ResNetSpec builds a ResNet-style architecture of basic residual blocks.
func ResNetSpec(name string, inC, h, w, numClasses int, blocks, channels []int, act string, psn bool) *Spec {
	return nn.ResNetSpec(name, inC, h, w, numClasses, blocks, channels, act, psn)
}

// UNetSpec builds a U-Net-style encoder/decoder architecture with skip
// concatenations.
func UNetSpec(name string, inC, h, w, outC, base int, act string, psn bool) *Spec {
	return nn.UNetSpec(name, inC, h, w, outC, base, act, psn)
}

// LoadNetwork reads a network serialized with Network.Save.
func LoadNetwork(r io.Reader) (*Network, error) { return nn.Load(r) }

// Typed integrity errors: every checksummed decoder in the framework
// (compressed containers, model files, training checkpoints) reports
// damaged bytes as an error chaining to one of these, so callers can
// tell bad data from bad requests with errors.Is.
var (
	// ErrCorrupt marks bytes that fail a checksum or structural check.
	ErrCorrupt = integrity.ErrCorrupt
	// ErrTruncated marks input that ends before its framing says it should.
	ErrTruncated = integrity.ErrTruncated
)

// IsIntegrityError reports whether err chains to ErrCorrupt or
// ErrTruncated.
func IsIntegrityError(err error) bool { return integrity.IsIntegrityError(err) }

// TrainerState is a Trainer's complete resumable state (parameters,
// optimizer moments, PSN spectral state, step counter); capture with
// Trainer.CaptureState, restore with Trainer.RestoreState.
type TrainerState = nn.TrainerState

// CheckpointState is one training checkpoint: a TrainerState plus the
// data-order RNG position.
type CheckpointState = checkpoint.State

// CheckpointLoop wires periodic crash-safe checkpointing into a training
// loop (see internal/checkpoint.Loop).
type CheckpointLoop = checkpoint.Loop

// SaveCheckpoint atomically writes a checkpoint into dir (temp file +
// fsync + rename: a crash mid-write never leaves a half checkpoint that
// a later resume could read).
func SaveCheckpoint(dir string, st *CheckpointState) (string, error) {
	return checkpoint.Save(dir, st)
}

// LoadLatestCheckpoint restores the newest intact checkpoint in dir,
// skipping damaged files; it returns the state, the file it came from,
// and an error wrapping os.ErrNotExist when no usable checkpoint exists.
func LoadLatestCheckpoint(dir string) (*CheckpointState, string, error) {
	return checkpoint.LoadLatest(dir)
}

// Matrix is the column-major-batch matrix type networks consume:
// features x batch, one sample per column.
type Matrix = tensor.Matrix

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix { return tensor.NewMatrix(rows, cols) }

// NewMatrixFrom wraps an existing row-major backing slice (shared, not
// copied) as a rows x cols matrix.
func NewMatrixFrom(rows, cols int, data []float64) *Matrix {
	return tensor.NewMatrixFrom(rows, cols, data)
}

// Optimizer updates network parameters from accumulated gradients.
type Optimizer = nn.Optimizer

// NewSGD returns stochastic gradient descent with optional momentum and
// decoupled weight decay.
func NewSGD(lr, momentum, weightDecay float64) Optimizer { return nn.NewSGD(lr, momentum, weightDecay) }

// NewAdam returns the Adam optimizer with conventional defaults.
func NewAdam(lr float64) Optimizer { return nn.NewAdam(lr) }

// Trainer is the deterministic data-parallel training engine: minibatch
// shards fan out over a pool of Network.Clone replicas and gradients
// reduce in a fixed tree order, so the weight trajectory is bit-identical
// for any Workers setting (see internal/nn.Trainer).
type Trainer = nn.Trainer

// TrainConfig tunes a Trainer. Workers (default GOMAXPROCS) only affects
// speed, never results; ShardSize (default 32) fixes the gradient
// reduction tree.
type TrainConfig = nn.TrainConfig

// LossFn is a shard loss: given network outputs for batch columns
// [lo, hi) of a total-column batch, return the shard's loss contribution
// and dL/d(out) (see MSEShard / CrossEntropyShard).
type LossFn = nn.LossFn

// NewTrainer builds a data-parallel trainer updating net with opt. The
// network must carry its Spec and contain no BatchNorm layers.
func NewTrainer(net *Network, opt Optimizer, cfg TrainConfig) (*Trainer, error) {
	return nn.NewTrainer(net, opt, cfg)
}

// MSEShard adapts a full-batch regression target into a Trainer LossFn.
func MSEShard(y *Matrix) LossFn { return nn.MSEShard(y) }

// CrossEntropyShard adapts a full-batch label slice into a Trainer
// LossFn.
func CrossEntropyShard(labels []int) LossFn { return nn.CrossEntropyShard(labels) }

// Format is a weight quantization format.
type Format = numfmt.Format

// Quantization formats (Table I).
const (
	FP32 = numfmt.FP32
	TF32 = numfmt.TF32
	FP16 = numfmt.FP16
	BF16 = numfmt.BF16
	INT8 = numfmt.INT8
)

// Formats lists the quantization targets the paper evaluates.
var Formats = numfmt.Formats

// StepSize returns the Table I average quantization step size q(W).
func StepSize(f Format, weights []float64) float64 { return numfmt.StepSize(f, weights) }

// Quantize returns an inference copy of net with weights rounded to f.
func Quantize(net *Network, f Format) (*Network, error) { return quant.Quantize(net, f) }

// Analysis exposes the paper's error bounds for a network.
type Analysis = core.Analysis

// Analyze builds the error-flow analysis of net under weight format f
// (FP32 for compression-only analysis).
func Analyze(net *Network, f Format) (*Analysis, error) { return core.AnalyzeNetwork(net, f) }

// Norm selects the norm a tolerance is stated in.
type Norm = core.Norm

// Tolerance norms.
const (
	NormL2   = core.NormL2
	NormLinf = core.NormLinf
)

// PlanRequest asks the planner for a reduction configuration.
type PlanRequest = core.PlanRequest

// PlanResult is the planner's decision.
type PlanResult = core.Plan

// Plan splits a QoI tolerance between quantization and compression
// (Fig. 1): it picks the fastest admissible format and hands the unused
// tolerance to the compressor.
func Plan(net *Network, req PlanRequest) (*PlanResult, error) { return core.PlanNetwork(net, req) }

// Mode is a compression error mode.
type Mode = compress.Mode

// Compression error modes.
const (
	AbsLinf = compress.AbsLinf
	RelLinf = compress.RelLinf
	L2      = compress.L2
	RelL2   = compress.RelL2
)

// Codecs lists the registered compressor names ("mgard", "sz", "zfp").
func Codecs() []string { return compress.Names() }

// Compress encodes data (with grid dims, rank 1-3) under an error bound
// using the named codec, returning a self-describing blob.
func Compress(codec string, data []float64, dims []int, mode Mode, tol float64) ([]byte, error) {
	return compress.Encode(codec, data, dims, mode, tol)
}

// Decompress reverses Compress.
func Decompress(blob []byte) ([]float64, error) {
	data, _, err := compress.Decode(blob)
	return data, err
}

// DecompressDims reverses Compress and additionally returns the grid
// dimensions the blob was encoded with, so callers can reshape the flat
// data without carrying the dims out of band.
func DecompressDims(blob []byte) ([]float64, []int, error) {
	data, b, err := compress.Decode(blob)
	if err != nil {
		return nil, nil, err
	}
	return data, b.Dims, nil
}

// Pipeline is an end-to-end error-bounded inference pipeline.
type Pipeline = pipeline.Pipeline

// PipelineConfig configures a Pipeline directly.
type PipelineConfig = pipeline.Config

// PipelineResult reports one pipeline run.
type PipelineResult = pipeline.Result

// NewPipeline builds a pipeline executing a planner decision with the
// given codec.
func NewPipeline(net *Network, plan *PlanResult, codec string, norm Norm) (*Pipeline, error) {
	return pipeline.FromPlan(net, plan, codec, norm, pipeline.Config{})
}

// NewPipelineConfig builds a pipeline from an explicit configuration.
func NewPipelineConfig(net *Network, cfg PipelineConfig) (*Pipeline, error) {
	return pipeline.New(net, cfg)
}

// Device is a simulated accelerator for execution-throughput modeling.
type Device = gpusim.Device

// Simulated devices from the paper's testbed.
var (
	V100      = gpusim.V100
	RTX3080Ti = gpusim.RTX3080Ti
	MI250X    = gpusim.MI250X
)

// ExecThroughput simulates model-execution throughput (bytes of input
// per second) for a network at a batch size and weight format.
func ExecThroughput(net *Network, d *Device, f Format, batch int) float64 {
	return gpusim.Throughput(net, d, f, batch)
}

// Granularity selects the grouping scheme for grouped INT8 quantization
// (the paper's future-work extension).
type Granularity = numfmt.Granularity

// Grouped INT8 granularities.
const (
	PerTensor = numfmt.PerTensor
	PerRow    = numfmt.PerRow
	PerColumn = numfmt.PerColumn
	PerBlock  = numfmt.PerBlock
)

// QuantizeGroupedINT8 quantizes net's weights to INT8 with per-group
// affine scales, tightening both bound and achieved error versus the
// uniform Table I scheme.
func QuantizeGroupedINT8(net *Network, g Granularity, blockSize int) (*Network, error) {
	return quant.QuantizeGroupedINT8(net, g, blockSize)
}

// AnalyzeGroupedINT8 builds the error-flow analysis for grouped INT8
// quantization.
func AnalyzeGroupedINT8(net *Network, g Granularity, blockSize int) (*Analysis, error) {
	return core.AnalyzeNetworkGroupedINT8(net, g, blockSize)
}

// QuantizeActivations additionally rounds activation outputs to actFmt
// (float formats only) on top of weightFmt weights; bound the extra
// error with Analysis.ActivationQuantBound.
func QuantizeActivations(net *Network, weightFmt, actFmt Format) (*Network, error) {
	return quant.QuantizeActivations(net, weightFmt, actFmt)
}

// FoldBatchNorm folds inference-mode batch normalization into preceding
// convolutions so the folded network is exactly analyzable.
func FoldBatchNorm(net *Network) (*Network, error) { return nn.FoldBatchNorm(net) }

// MixedAssignment is a per-layer format assignment (forward order over
// linear layers).
type MixedAssignment = core.Assignment

// MixedPlan is the mixed-precision planner's output.
type MixedPlan = core.MixedPlan

// PlanMixedPrecision greedily assigns per-layer formats: the fastest
// assignment whose predicted quantization bound fits the budget (the
// paper's per-layer-format future work).
func PlanMixedPrecision(net *Network, budget float64) (*MixedPlan, error) {
	return core.PlanMixed(net, budget, nil)
}

// QuantizeMixed quantizes each linear layer to its assigned format.
func QuantizeMixed(net *Network, a MixedAssignment) (*Network, error) {
	return quant.QuantizeMixed(net, a)
}

// EstimateRatio predicts a codec's compression ratio from a sampled
// compression pass (sampleFrac of the slowest dimension).
func EstimateRatio(codec string, data []float64, dims []int, mode Mode, tol, sampleFrac float64) (float64, error) {
	return compress.EstimateRatio(codec, data, dims, mode, tol, sampleFrac)
}

// Engine is a compiled inference plan for a network: shapes inferred
// and buffers preallocated once at compile time, so steady-state
// Engine.Forward allocates nothing and is bit-identical to
// Network.Forward — certified error bounds transfer unchanged.
type Engine = nn.Engine

// CompileInference compiles net into an Engine sized for batches up to
// maxBatch (larger batches still work; the buffer arena grows to the
// high-water mark). The Engine shares net's weights as read-only views,
// so later weight updates are visible without recompiling.
func CompileInference(net *Network, maxBatch int) (*Engine, error) {
	return nn.CompileInference(net, maxBatch)
}

// CompileInferenceSharded is CompileInference with Forward splitting
// each batch column-wise across up to shards goroutines. Outputs are
// bit-identical for every shard count — sharding is a wall-clock knob,
// never a numbers knob — so certified bounds transfer unchanged.
func CompileInferenceSharded(net *Network, maxBatch, shards int) (*Engine, error) {
	return nn.CompileInferenceSharded(net, maxBatch, shards)
}

// InferShapes statically infers a Spec's output dimension, validating
// layer-geometry chaining along the way — no network build, no forward
// pass.
func InferShapes(s *Spec) (int, error) { return nn.InferShapes(s) }

// Server is the concurrent batched inference service: named models,
// per-request QoI error budgets, dynamic micro-batching over a worker
// pool of compiled inference engines, bounded-queue backpressure, and a
// /metrics plane (see internal/serve).
type Server = serve.Server

// ServeConfig tunes a Server; the zero value gets production defaults.
type ServeConfig = serve.Config

// ServeMetrics is a point-in-time snapshot of a Server's metrics plane.
type ServeMetrics = serve.Snapshot

// NewServer builds an inference server; register models with
// Server.Register and mount Server.Handler on any net/http server.
func NewServer(cfg ServeConfig) *Server { return serve.New(cfg) }

// Artifact is an ahead-of-time compiled model bundle: quantized
// weights, the compiled op program, the error-flow graph with
// build-time quantization step tables, and the certified bound — one
// checksummed file that cold-starts anywhere with no recompilation
// (see internal/artifact). Register one with Server.RegisterArtifact.
type Artifact = artifact.Artifact

// BuildArtifact compiles net into an artifact serving weight format f:
// quantization, program compilation, error-flow analysis, and the
// certified bound all happen once, here, at build time.
func BuildArtifact(net *Network, f Format) (*Artifact, error) { return artifact.Build(net, f) }

// DecodeArtifact parses and fully verifies an artifact's bytes: frame
// checksum, canonical form, program-vs-model consistency, and a
// bit-exact recomputation of the stored certified bound. Damage is a
// typed integrity error (IsIntegrityError), never a partially trusted
// artifact.
func DecodeArtifact(raw []byte) (*Artifact, error) { return artifact.Decode(raw) }

// WriteArtifactFile writes an artifact atomically (temp, fsync, rename).
func WriteArtifactFile(path string, a *Artifact) error { return artifact.WriteFile(path, a) }

// ReadArtifactFile reads and fully verifies an artifact file.
func ReadArtifactFile(path string) (*Artifact, error) { return artifact.ReadFile(path) }

// IsArtifact reports whether raw begins with the artifact container
// magic — how loaders auto-detect artifact files vs legacy model files.
func IsArtifact(raw []byte) bool { return artifact.SniffMagic(raw) }

// Gateway routes inference requests across a fleet of errpropd
// backends: consistent-hash routing on (model, request bytes), active
// health probes with a liveness/readiness distinction, bounded retry
// with deterministic backoff jitter, per-backend circuit breakers, and
// a response cache for the deterministic /v1/plan and /v1/models
// endpoints. Retries are safe because backend responses are
// bit-identical for the same request bytes (see internal/gateway).
type Gateway = gateway.Gateway

// GatewayConfig tunes a Gateway; the zero value gets production
// defaults.
type GatewayConfig = gateway.Config

// GatewayBackend names one routable errpropd process.
type GatewayBackend = gateway.Backend

// GatewayRegistry is a fleet manifest: the checksummed on-disk form is
// written by WriteGatewayRegistry and hot-reloaded by a running
// gateway on SIGHUP.
type GatewayRegistry = gateway.Registry

// GatewayArtifactRef pins one model's compiled artifact in a registry
// manifest by path and checksum: the gateway verifies the file at
// load/reload (a mismatch is a typed refusal that leaves the running
// fleet untouched) and then answers /v1/plan and /v1/models for that
// model from the artifact itself, with zero backend round-trips.
type GatewayArtifactRef = gateway.ArtifactRef

// GatewayBackendStatus is one backend's health/traffic slice of the
// gateway's metrics.
type GatewayBackendStatus = gateway.BackendStatus

// GatewayMetrics is a point-in-time snapshot of a Gateway's metrics
// plane (the GET /metrics body).
type GatewayMetrics = gateway.Snapshot

// NewGateway builds a gateway with no backends; install a fleet with
// Gateway.SetBackends or Gateway.LoadRegistryFile and mount
// Gateway.Handler.
func NewGateway(cfg GatewayConfig) *Gateway { return gateway.New(cfg) }

// WriteGatewayRegistry atomically writes a checksummed registry
// manifest (temp file + fsync + rename).
func WriteGatewayRegistry(path string, reg *GatewayRegistry) error {
	return gateway.WriteRegistryFile(path, reg)
}

// ReadGatewayRegistry reads and verifies a registry manifest; corrupt
// or truncated files are refused with a typed integrity error.
func ReadGatewayRegistry(path string) (*GatewayRegistry, error) {
	return gateway.ReadRegistryFile(path)
}

// AutotuneOptions configures the automated allocation search.
type AutotuneOptions = autotune.Options

// AutotuneResult is the search outcome.
type AutotuneResult = autotune.Result

// Autotune searches quantization-allocation fractions for the
// configuration with the highest predicted end-to-end throughput that
// still meets the QoI tolerance — the optimization algorithm the paper
// names as future work.
func Autotune(net *Network, field []float64, dims []int, opt AutotuneOptions) (*AutotuneResult, error) {
	return autotune.Optimize(net, field, dims, opt)
}

// ScoreConfig tunes a bulk scoring run (see internal/score.Config): only
// Format and QoIBudget affect the numbers; Workers, batching, simulated
// storage and cursor knobs affect speed, billing and durability, never a
// result bit.
type ScoreConfig = score.Config

// ScoreResult reports one bulk scoring run: the deterministic aggregate,
// per-chunk results with certified error bounds, and resume provenance.
type ScoreResult = score.Result

// ScoreChunkResult is one chunk's scored output: QoI statistics plus the
// certified per-sample error bound from the chunk's achieved codec error
// and the model's quantization bound (Inequality (3)).
type ScoreChunkResult = score.ChunkResult

// ScoreManifest is the ordered, checksummed chunk index of a scored
// dataset.
type ScoreManifest = score.Manifest

// ScoreDatasetConfig tunes WriteScoreDataset.
type ScoreDatasetConfig = score.DatasetConfig

// ScoreResultLog durably streams per-chunk results as JSON lines in
// commit order; paired with a cursor directory it makes scoring runs
// crash-safe and bit-identically resumable.
type ScoreResultLog = score.ResultLog

// WriteScoreDataset compresses a feature-major field (features x samples)
// into a chunked dataset under dir and writes its manifest. Each chunk's
// *achieved* reconstruction error is measured against the original data
// and recorded in the manifest — the certified input to later scoring.
func WriteScoreDataset(dir string, field []float64, features int, cfg ScoreDatasetConfig) (*ScoreManifest, error) {
	return score.WriteDataset(dir, field, features, cfg)
}

// ReadScoreManifest reads and verifies a dataset manifest.
func ReadScoreManifest(path string) (*ScoreManifest, error) {
	return score.ReadManifestFile(path)
}

// OpenScoreResultLog opens (or creates) a durable result log at path.
func OpenScoreResultLog(path string) (*ScoreResultLog, error) {
	return score.OpenResultLog(path)
}

// Score streams a dataset's chunks through net with per-chunk certified
// error accounting: bounded memory, bit-identical results for any worker
// count, and — with cfg.CursorDir set — crash-safe bit-identical resume.
func Score(net *Network, man *ScoreManifest, cfg ScoreConfig) (*ScoreResult, error) {
	return score.Score(net, man, cfg)
}

// ScoreFile is Score over an on-disk dataset directory: it reads the
// manifest at path and scores the chunks beside it.
func ScoreFile(net *Network, manifestPath string, cfg ScoreConfig) (*ScoreResult, error) {
	return score.ScoreFile(net, manifestPath, cfg)
}

// ScoreArtifact is Score cold-started from a compiled artifact: the
// shipped program binds to the shipped quantized weights and the
// certified accounting comes from the artifact's error-flow graph —
// results are bit-identical to scoring the original network at the
// artifact's format.
func ScoreArtifact(art *Artifact, man *ScoreManifest, cfg ScoreConfig) (*ScoreResult, error) {
	return score.ScoreArtifact(art, man, cfg)
}

// ScoreArtifactFile is ScoreArtifact over an on-disk dataset directory.
func ScoreArtifactFile(art *Artifact, manifestPath string, cfg ScoreConfig) (*ScoreResult, error) {
	return score.ScoreArtifactFile(art, manifestPath, cfg)
}
